//! Configuration search: the paper's §5.1 methodology.
//!
//! "To ensure a fair comparison, we tested a wide variety of
//! configurations in each case and selected the fastest one." For each
//! *method* (the four lines of Figure 5) and each global batch size, we
//! enumerate every valid combination of tensor/pipeline/data parallelism,
//! micro-batch shape, loop count and sharding level, simulate each, drop
//! those that do not fit device memory, and keep the fastest.
//!
//! The engine is layered (see DESIGN.md § Search engine):
//!
//! 1. [`crate::candidates`] lazily enumerates typed [`Candidate`]s in a
//!    fixed total order;
//! 2. [`crate::prune`] rejects candidates whose closed-form memory lower
//!    bound cannot fit, or whose Eq. (3)/(7) throughput upper bound
//!    cannot beat the best result so far;
//! 3. survivors are simulated on a scoped worker pool, sharing generated
//!    schedules through a [`ScheduleCache`];
//! 4. results reduce serially in candidate order, so the winner (and
//!    every [`SearchReport`] counter) is bit-identical to the exhaustive
//!    serial reference ([`best_config_exhaustive`]) for any thread count.
//!
//! Baseline fidelity: the depth-first method is simulated like the
//! paper's Megatron-LM baseline — no network overlap, no sharding
//! (§5.1) — and each method searches the same sharding levels the paper
//! tried (Tables E.1–E.3 footnote 2: "DP_FS for breadth-first and
//! non-pipelined, DP_PS for non-looped").

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bfpp_cluster::ClusterSpec;
use bfpp_core::{CacheStats, ScheduleCache, ScheduleKind};
use bfpp_model::TransformerConfig;
use bfpp_parallel::{DataParallelism, ParallelConfig};
use bfpp_sim::observe::Counters;
use bfpp_sim::{DurationMatrix, MetricsRegistry, Perturbation, SimDuration};

use crate::batch::{ClassBase, ClassCache, ClassKey};
use crate::candidates::{enumerate, Candidate};
use crate::executor::{Executor, ScopedTask};
use crate::kernel::KernelModel;
use crate::lower::{compute_durations, lower_with_schedule, Durations, LoweredGraph};
use crate::measure::{
    measure_lowered, measure_with_durations, simulate_perturbed, simulate_with_schedule_perturbed,
    Measurement,
};
use crate::overlap::OverlapConfig;
use crate::prune::{lower_bound_tflops, prune_reason, PruneReason};
use crate::warm::{self, Outcome, SweepRecord, WarmCache};

/// The four methods compared in Figure 5 and Tables E.1–E.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// The paper's breadth-first looping pipeline.
    BreadthFirst,
    /// Depth-first looping pipeline (Megatron-LM interleaved baseline).
    DepthFirst,
    /// Non-looped pipeline (GPipe / 1F1B).
    NonLooped,
    /// No pipeline: data (+ tensor) parallelism only.
    NoPipeline,
}

impl Method {
    /// All methods, paper order.
    pub const ALL: [Method; 4] = [
        Method::BreadthFirst,
        Method::DepthFirst,
        Method::NonLooped,
        Method::NoPipeline,
    ];

    /// The label used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Method::BreadthFirst => "Breadth-first",
            Method::DepthFirst => "Depth-first",
            Method::NonLooped => "Non-looped",
            Method::NoPipeline => "No pipeline",
        }
    }

    /// The schedule kinds this method may use, in enumeration order.
    pub fn kinds(&self) -> &'static [ScheduleKind] {
        match self {
            Method::BreadthFirst => &[ScheduleKind::BreadthFirst],
            Method::DepthFirst => &[ScheduleKind::DepthFirst],
            // "Non-looped" tries both classic schedules; "no pipeline"
            // tries both gradient-accumulation orders (Appendix C:
            // breadth-first = GPipe order, depth-first = 1F1B order).
            Method::NonLooped => &[ScheduleKind::GPipe, ScheduleKind::OneFOneB],
            Method::NoPipeline => &[ScheduleKind::GPipe, ScheduleKind::OneFOneB],
        }
    }

    /// The sharding levels the paper tried for this method, in
    /// enumeration order.
    pub fn dp_variants(&self) -> &'static [DataParallelism] {
        match self {
            Method::BreadthFirst | Method::NoPipeline => {
                &[DataParallelism::Unsharded, DataParallelism::FullySharded]
            }
            Method::NonLooped => &[
                DataParallelism::Unsharded,
                DataParallelism::PartiallySharded,
            ],
            // Megatron-LM baseline: unsharded only.
            Method::DepthFirst => &[DataParallelism::Unsharded],
        }
    }

    /// The overlap capability of this method's implementation (§5.1:
    /// Megatron-LM supports neither data- nor pipeline-parallel overlap,
    /// and pays synchronization overhead around each transfer).
    pub fn overlap(&self) -> OverlapConfig {
        match self {
            Method::DepthFirst => OverlapConfig::megatron(),
            _ => OverlapConfig::full(),
        }
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// How survivors reach the simulator. Both modes are bit-identical —
/// same winners, same [`SearchReport`] headline counters for any thread
/// count — they differ only in how the work is organized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalMode {
    /// Partition each chunk's survivors by topology class
    /// (`crate::batch`), lower **one clean representative per class**,
    /// and evaluate every other member from an SoA duration batch
    /// replayed over the class's prebuilt solver workspace. Work-stealing
    /// granularity is a batch of classes, not a candidate. The default.
    #[default]
    Batched,
    /// The classic engine: every survivor is lowered and solved
    /// individually. Kept as the bit-identity reference and for
    /// workloads whose candidates rarely share a topology.
    PerCandidate,
}

/// Limits on the configuration enumeration and evaluation.
#[derive(Debug, Clone)]
pub struct SearchOptions {
    /// Largest micro-batch size tried.
    pub max_microbatch: u32,
    /// Largest stages-per-device (loop count) tried.
    pub max_loop: u32,
    /// Skip configurations whose op graph would exceed this many compute
    /// actions (guards the search's own runtime).
    pub max_actions: u64,
    /// Worker threads for candidate evaluation; `0` uses the machine's
    /// available parallelism. The result is identical for every value.
    pub threads: usize,
    /// Deterministic fault model every candidate is simulated under
    /// (identity by default). Part of the candidate's evaluation
    /// identity: the same options yield bit-identical searches for any
    /// thread count, perturbed or not.
    pub perturbation: Perturbation,
    /// Wall-clock budget for the whole search. Checked on the same
    /// cooperative chunk boundary as cancellation: once exceeded, the
    /// search stops, returns its best-so-far and sets
    /// [`SearchReport::timed_out`]. `None` = unbounded. Wall-clock by
    /// nature, so a deadlined search is *not* bit-stable across runs —
    /// use `max_candidates` for a deterministic budget.
    pub deadline: Option<Duration>,
    /// Candidate-visit budget: the search stops (with
    /// [`SearchReport::timed_out`]) once this many enumerated
    /// candidates have been visited. Unlike `deadline` this is
    /// deterministic: the same budget truncates at the same chunk
    /// boundary every run. `None` = unbounded.
    pub max_candidates: Option<u64>,
    /// How survivors are evaluated ([`EvalMode::Batched`] by default).
    /// Never part of a warm-start request signature: both modes produce
    /// and consume the same records bit-identically.
    pub eval: EvalMode,
}

impl SearchOptions {
    /// The worker count to actually use: `threads`, or the machine's
    /// available parallelism when `threads == 0`.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            max_microbatch: 16,
            max_loop: 32,
            max_actions: 400_000,
            threads: 0,
            perturbation: Perturbation::none(),
            deadline: None,
            max_candidates: None,
            eval: EvalMode::default(),
        }
    }
}

/// The long-lived infrastructure a search runs over: the worker pool,
/// the schedule cache, and (optionally) the warm-start record store. A
/// batch CLI call uses [`SearchEnv::private`] — process-shared pool,
/// request-private caches, exactly the classic engine. A planner service
/// builds one `SearchEnv` with shared `Arc`'d caches and routes every
/// request through it.
#[derive(Debug, Clone)]
pub struct SearchEnv {
    /// The worker pool candidate evaluation runs on.
    pub executor: Arc<Executor>,
    /// Generated-schedule cache, shareable across concurrent requests
    /// (per-request traffic is attributed via [`CacheStats`]).
    pub schedules: Arc<ScheduleCache>,
    /// Topology-class base cache for [`EvalMode::Batched`]. Bases are
    /// model/cluster/kernel-independent, so the process-wide
    /// [`ClassCache::global`] is the default even for private
    /// environments — a hit skips lowering and CSR construction but can
    /// never change a result.
    pub classes: Arc<ClassCache>,
    /// Warm-start store. `None` disables both recording and replay.
    pub warm: Option<Arc<WarmCache>>,
    /// Telemetry registry. `None` (the default) runs the engine
    /// uninstrumented; a service environment installs one and every
    /// request feeds it per-phase span histograms and candidate-flow
    /// counters at request end — never on the per-candidate hot path,
    /// which is how instrumentation overhead stays in the noise (the
    /// `telemetry_overhead` bench arm guards this).
    pub metrics: Option<Arc<MetricsRegistry>>,
}

impl SearchEnv {
    /// The classic one-shot environment: the process-shared executor
    /// and topology-class cache, a private schedule cache, no
    /// warm-start store. Byte-identical *results* to the pre-service
    /// engine (the shared class cache affects only speed).
    pub fn private() -> SearchEnv {
        SearchEnv {
            executor: Arc::clone(Executor::global()),
            schedules: Arc::new(ScheduleCache::new()),
            classes: Arc::clone(ClassCache::global()),
            warm: None,
            metrics: None,
        }
    }

    /// A service environment: the process-shared executor and
    /// topology-class cache, shared schedule cache, and a warm-start
    /// store with default limits.
    pub fn service() -> SearchEnv {
        SearchEnv {
            executor: Arc::clone(Executor::global()),
            schedules: Arc::new(ScheduleCache::new()),
            classes: Arc::clone(ClassCache::global()),
            warm: Some(Arc::new(WarmCache::new())),
            metrics: Some(Arc::new(MetricsRegistry::new())),
        }
    }
}

impl Default for SearchEnv {
    fn default() -> Self {
        SearchEnv::private()
    }
}

/// The winning configuration for one (method, batch) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResult {
    /// The method searched.
    pub method: Method,
    /// The winning schedule kind.
    pub kind: ScheduleKind,
    /// The winning configuration.
    pub cfg: ParallelConfig,
    /// The overlap setting used.
    pub overlap: OverlapConfig,
    /// Its measurement.
    pub measurement: Measurement,
}

/// What one search run did: how many candidates were enumerated, how
/// many each analytic filter rejected, how many reached the simulator,
/// and how long the whole search took. Counters are deterministic —
/// independent of the worker thread count.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SearchReport {
    /// Candidates enumerated (every valid point of the search space).
    pub enumerated: u64,
    /// Rejected because their memory lower bound cannot fit the device.
    pub pruned_memory: u64,
    /// Rejected because their throughput upper bound cannot beat the
    /// best simulated result so far.
    pub pruned_throughput: u64,
    /// Candidates handed to the simulator.
    pub simulated: u64,
    /// Wall-clock time of the whole search.
    pub wall_time: Duration,
    /// The winner's throughput (Tflop/s per GPU), if anything fit.
    pub best: Option<f64>,
    /// The winner's throughput re-simulated under the
    /// [`Perturbation::reference_probe`] straggler (Tflop/s per GPU) — a
    /// standardized robustness probe, comparable across searches.
    pub robust_tflops: Option<f64>,
    /// `robust_tflops / best`: the fraction of clean throughput the
    /// winner retains under the reference probe (lower = more fragile).
    pub retention: Option<f64>,
    /// Cached clean lowerings reused from a warm-start record instead of
    /// being rebuilt. Always `0` for a cold search or a [`SearchEnv`]
    /// without a warm store. Not a CSV column (single-request CSV output
    /// is byte-stable across engine versions), and — like `counters` —
    /// excluded from the bit-stability guarantee across *concurrent*
    /// requests racing to populate one record; within one request it is
    /// thread-count-invariant.
    pub warm_hits: u64,
    /// Whether the search was cancelled before visiting every candidate.
    /// A cancelled report's counters describe the completed prefix only,
    /// and its `best` is merely best-so-far. Not a CSV column.
    pub cancelled: bool,
    /// Whether the search stopped at its [`SearchOptions::deadline`] or
    /// [`SearchOptions::max_candidates`] budget before visiting every
    /// candidate. Like `cancelled`, a timed-out report describes the
    /// completed prefix and its `best` is best-so-far. Not a CSV column.
    pub timed_out: bool,
    /// Instrumentation detail: phase wall-clock spans (`enumerate`,
    /// `prune`, `evaluate`, `probe`) and schedule-cache `cache_hits` /
    /// `cache_misses` counts. Diagnostic only — spans are host
    /// wall-clock, and two workers racing on a cold cache key can both
    /// count a miss — so, like [`SearchReport::wall_time`], this field
    /// is excluded from the bit-stability guarantees (the headline
    /// counters above remain thread-count-invariant).
    pub counters: Counters,
}

impl SearchReport {
    /// Header for the trailing CSV columns the reproduction binaries
    /// emit, matching [`SearchReport::csv_row`].
    pub fn csv_header() -> &'static str {
        "enumerated,pruned_memory,pruned_throughput,simulated,search_ms,robust_tflops,retention_pct"
    }

    /// The report as trailing CSV columns (wall time in milliseconds,
    /// retention in percent, `-` when no winner was found).
    pub fn csv_row(&self) -> String {
        let robust = self
            .robust_tflops
            .map_or_else(|| "-".to_string(), |v| format!("{v:.2}"));
        let retention = self
            .retention
            .map_or_else(|| "-".to_string(), |v| format!("{:.1}", v * 100.0));
        format!(
            "{},{},{},{},{:.1},{},{}",
            self.enumerated,
            self.pruned_memory,
            self.pruned_throughput,
            self.simulated,
            self.wall_time.as_secs_f64() * 1e3,
            robust,
            retention
        )
    }

    /// Accumulates another report's counters (for sweep-level totals).
    /// `best`/`robust_tflops` keep the larger of the two; `retention`
    /// keeps the smaller (a sweep is as robust as its most fragile cell).
    pub fn accumulate(&mut self, other: &SearchReport) {
        self.enumerated += other.enumerated;
        self.pruned_memory += other.pruned_memory;
        self.pruned_throughput += other.pruned_throughput;
        self.simulated += other.simulated;
        self.wall_time += other.wall_time;
        self.best = match (self.best, other.best) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        self.robust_tflops = match (self.robust_tflops, other.robust_tflops) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        self.retention = match (self.retention, other.retention) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.warm_hits += other.warm_hits;
        self.cancelled |= other.cancelled;
        self.timed_out |= other.timed_out;
        self.counters.merge(&other.counters);
    }
}

/// Live progress of one in-flight search, shared between the engine and
/// an observer (the daemon's heartbeat emitter). The engine publishes at
/// chunk boundaries only — the same cadence as its cancellation
/// checkpoint — so observation adds a handful of relaxed stores per 32
/// candidates, nothing on the per-candidate hot path. All fields are
/// monotonic over one request, and the values mirror the corresponding
/// [`SearchReport`] counters, so a snapshot taken after `finished`
/// equals the final report's tallies exactly.
#[derive(Debug, Default)]
pub struct SearchProgress {
    enumerated: AtomicU64,
    pruned_memory: AtomicU64,
    pruned_throughput: AtomicU64,
    simulated: AtomicU64,
    /// Best-so-far throughput in milli-Tflop/s per GPU (integral so the
    /// cell stays a single atomic); `0` means no winner yet.
    best_millitflops: AtomicU64,
    warm_start: AtomicBool,
    finished: AtomicBool,
}

impl SearchProgress {
    pub fn new() -> SearchProgress {
        SearchProgress::default()
    }

    /// A consistent-enough copy for reporting: fields are read
    /// individually (relaxed), so a snapshot racing the engine may be
    /// torn across one chunk boundary — fine for heartbeats, and exact
    /// once [`ProgressSnapshot::finished`] is `true`.
    pub fn snapshot(&self) -> ProgressSnapshot {
        ProgressSnapshot {
            enumerated: self.enumerated.load(Ordering::Relaxed),
            pruned_memory: self.pruned_memory.load(Ordering::Relaxed),
            pruned_throughput: self.pruned_throughput.load(Ordering::Relaxed),
            simulated: self.simulated.load(Ordering::Relaxed),
            best_millitflops: self.best_millitflops.load(Ordering::Relaxed),
            warm_start: self.warm_start.load(Ordering::Relaxed),
            finished: self.finished.load(Ordering::Relaxed),
        }
    }

    fn publish(&self, report: &SearchReport, best: Option<&SearchResult>) {
        self.pruned_memory
            .store(report.pruned_memory, Ordering::Relaxed);
        self.pruned_throughput
            .store(report.pruned_throughput, Ordering::Relaxed);
        self.simulated.store(report.simulated, Ordering::Relaxed);
        if let Some(b) = best {
            let milli = (b.measurement.tflops_per_gpu * 1e3).round().max(0.0) as u64;
            self.best_millitflops.store(milli.max(1), Ordering::Relaxed);
        }
    }
}

/// One point-in-time copy of a [`SearchProgress`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProgressSnapshot {
    /// Total candidates the request will visit (known up front).
    pub enumerated: u64,
    /// Rejected so far by the memory lower bound.
    pub pruned_memory: u64,
    /// Rejected so far by the throughput upper bound.
    pub pruned_throughput: u64,
    /// Handed to the simulator so far.
    pub simulated: u64,
    /// Best-so-far throughput in milli-Tflop/s per GPU; `0` = none yet.
    pub best_millitflops: u64,
    /// Whether the request replayed a warm record.
    pub warm_start: bool,
    /// Whether the search has returned (terminal snapshot).
    pub finished: bool,
}

impl ProgressSnapshot {
    /// Candidates whose fate is decided (pruned or simulated).
    pub fn visited(&self) -> u64 {
        self.pruned_memory + self.pruned_throughput + self.simulated
    }
}

/// Candidates are pruned and reduced in fixed-size chunks: each chunk is
/// pruned against the best of the chunks *before* it only, evaluated in
/// parallel, then reduced serially in candidate order. Keeping the chunk
/// size a constant (rather than deriving it from the thread count) is
/// what makes the report's counters — not just the winner —
/// thread-count-independent.
const EVAL_CHUNK: usize = 32;

/// Enumerates, prunes, simulates and ranks every valid configuration of
/// `method` at `global_batch`; returns the fastest that fits device
/// memory (or `None` if nothing fits) plus a [`SearchReport`] of what
/// the search did. Equally fast configurations resolve to the earliest
/// in enumeration order, exactly like [`best_config_exhaustive`].
pub fn best_config_with_report(
    model: &TransformerConfig,
    cluster: &ClusterSpec,
    method: Method,
    global_batch: u64,
    kernel: &KernelModel,
    opts: &SearchOptions,
) -> (Option<SearchResult>, SearchReport) {
    search_streaming(
        model,
        cluster,
        method,
        global_batch,
        kernel,
        opts,
        &SearchEnv::private(),
        None,
        None,
    )
}

/// How one request traverses the candidate space: cold (a fresh
/// enumeration, optionally recorded) or warm (replaying a prior cold
/// search's perturbation-independent outcomes).
enum Plan {
    Cold(Vec<Candidate>),
    Warm(Arc<SweepRecord>),
}

/// One survivor's evaluation output, written into an order-indexed slot
/// by whichever worker ran it.
#[derive(Default)]
struct EvalSlot {
    measurement: Option<Measurement>,
    /// The clean lowering, kept only when a recording run wants it.
    lowering: Option<Arc<LoweredGraph>>,
    /// Whether a warm record supplied the lowering.
    warm_hit: bool,
}

/// The full service-grade engine: [`best_config_with_report`] plus an
/// environment ([`SearchEnv`]), cooperative cancellation, and best-so-far
/// streaming.
///
/// * `cancel` is checked between chunks; once set, the search stops,
///   marks [`SearchReport::cancelled`] and returns its best-so-far
///   (skipping the robustness probe).
/// * `on_improve` fires from the serial reduction — in candidate order,
///   on the calling thread — each time the incumbent is replaced. The
///   final call's result equals the returned winner.
/// * With a warm store in `env`, a completed cold search records its
///   [per-candidate outcomes](crate::warm), and a later request with the
///   same signature (perturbation and thread count excepted) replays
///   them: no re-enumeration, no re-lowering for candidates whose clean
///   base lowering was retained — only duration re-solves. Warm results
///   are bit-identical to the cold engine's for the same request.
#[allow(clippy::too_many_arguments)]
pub fn search_streaming(
    model: &TransformerConfig,
    cluster: &ClusterSpec,
    method: Method,
    global_batch: u64,
    kernel: &KernelModel,
    opts: &SearchOptions,
    env: &SearchEnv,
    cancel: Option<&AtomicBool>,
    on_improve: Option<&mut (dyn FnMut(&SearchResult) + Send)>,
) -> (Option<SearchResult>, SearchReport) {
    search_observed(
        model,
        cluster,
        method,
        global_batch,
        kernel,
        opts,
        env,
        cancel,
        on_improve,
        None,
    )
}

/// [`search_streaming`] plus live observation: when `progress` is
/// given, the engine publishes its counters and best-so-far into it at
/// every chunk boundary and marks it finished on return, letting an
/// observer thread (the daemon's heartbeat) report on an in-flight
/// request without touching the search itself. With `progress = None`
/// this *is* `search_streaming`.
#[allow(clippy::too_many_arguments)]
pub fn search_observed(
    model: &TransformerConfig,
    cluster: &ClusterSpec,
    method: Method,
    global_batch: u64,
    kernel: &KernelModel,
    opts: &SearchOptions,
    env: &SearchEnv,
    cancel: Option<&AtomicBool>,
    mut on_improve: Option<&mut (dyn FnMut(&SearchResult) + Send)>,
    progress: Option<&SearchProgress>,
) -> (Option<SearchResult>, SearchReport) {
    let start = Instant::now();
    let overlap = method.overlap();
    let mut counters = Counters::new();
    let stats = CacheStats::new();
    let cache = env.schedules.as_ref();
    let warm_key = env
        .warm
        .as_ref()
        .map(|_| warm::request_key(model, cluster, method, global_batch, kernel, opts));

    // Cold or warm: a warm record replays a prior cold search's
    // enumeration (the "enumerate" span then covers the record lookup —
    // the whole point is that it is near-free).
    let plan = counters.time("enumerate", || {
        let record = match (&env.warm, &warm_key) {
            (Some(w), Some(k)) => w.lookup(k),
            _ => None,
        };
        match record {
            Some(rec) => Plan::Warm(rec),
            None => Plan::Cold(enumerate(model, cluster, method, global_batch, opts).collect()),
        }
    });
    let total = match &plan {
        Plan::Cold(cands) => cands.len(),
        Plan::Warm(rec) => rec.outcomes.len(),
    };
    let mut report = SearchReport {
        enumerated: total as u64,
        ..SearchReport::default()
    };

    // A cold search through a warm-capable env records outcomes (and,
    // when unperturbed, the clean lowerings) for future warm starts.
    let clean = opts.perturbation.is_identity();
    let mut recorder: Option<Vec<Outcome>> = match (&plan, &env.warm) {
        (Plan::Cold(_), Some(_)) => Some(Vec::with_capacity(total)),
        _ => None,
    };
    // Lowerings retained for the future warm record, capped at the
    // store's per-record op budget *as the reduction runs* — a large
    // cold search must not hold every survivor's lowering in memory
    // only for the record to reject most of them at insert time. A
    // dropped lowering costs nothing but a rebuild-on-miss later.
    let mut recorded_lowerings: Vec<(Candidate, Arc<LoweredGraph>)> = Vec::new();
    let record_budget = env.warm.as_ref().map_or(0, |w| w.record_budget());
    let mut recorded_ops: u64 = 0;
    if matches!(plan, Plan::Warm(_)) {
        counters.incr("warm_start");
    }
    if let Some(p) = progress {
        p.enumerated.store(total as u64, Ordering::Relaxed);
        p.warm_start
            .store(matches!(plan, Plan::Warm(_)), Ordering::Relaxed);
    }

    let batched = opts.eval == EvalMode::Batched;
    // Batched-mode request state: every class base this request resolved
    // (with its warm-record provenance, so `warm_hits` is thread-count
    // invariant — a key resolves exactly once per request), plus the
    // serial first-seen key order, which is the deterministic storage
    // order for a future warm record.
    let resolved: Mutex<HashMap<ClassKey, (Arc<ClassBase>, bool)>> = Mutex::new(HashMap::new());
    let mut class_order: Vec<ClassKey> = Vec::new();

    let threads = opts.effective_threads();
    let mut best: Option<SearchResult> = None;
    let mut best_cand: Option<Candidate> = None;
    let mut cancelled = false;
    let mut timed_out = false;

    let mut chunk_start = 0;
    while chunk_start < total {
        // Cancellation and budgets share one cooperative checkpoint:
        // the chunk boundary. Between checkpoints the search runs
        // uninterrupted, so both terminate with a consistent prefix.
        if cancel.is_some_and(|c| c.load(Ordering::Relaxed)) {
            cancelled = true;
            break;
        }
        if opts
            .max_candidates
            .is_some_and(|limit| chunk_start as u64 >= limit)
            || opts.deadline.is_some_and(|d| start.elapsed() >= d)
        {
            timed_out = true;
            break;
        }
        let chunk_end = (chunk_start + EVAL_CHUNK).min(total);
        let best_tflops = best.as_ref().map(|b| b.measurement.tflops_per_gpu);

        // Analytic pre-filters (closed-form, no simulation). Ties with
        // the current best survive the bound filter: equally fast
        // candidates lose to the earlier incumbent in the reduction, so
        // pruning them would be sound too — but only strictly dominated
        // candidates are *counted* as pruned. Under a jittery
        // perturbation an op can run up to `max_speedup()` faster than
        // its analytic duration, so the throughput bound is widened by
        // that factor to stay sound (exactly 1.0 for identity — the
        // unperturbed filter is unchanged bit-for-bit). A warm replay
        // re-decides only the throughput half (its best-so-far
        // trajectory is per-request); the memory half and the bound
        // itself are read from the record.
        let speedup = opts.perturbation.max_speedup();
        let mut survivors: Vec<Candidate> = Vec::with_capacity(chunk_end - chunk_start);
        counters.time("prune", || match &plan {
            Plan::Cold(cands) => {
                for cand in &cands[chunk_start..chunk_end] {
                    let reason =
                        prune_reason(model, cluster, cand, overlap, kernel, best_tflops, speedup);
                    if let Some(rec) = recorder.as_mut() {
                        rec.push(match reason {
                            Some(PruneReason::Memory) => Outcome::Memory,
                            _ => Outcome::Feasible {
                                cand: *cand,
                                ub_tflops: lower_bound_tflops(
                                    model, cluster, cand, overlap, kernel,
                                ),
                            },
                        });
                    }
                    match reason {
                        Some(PruneReason::Memory) => report.pruned_memory += 1,
                        Some(PruneReason::Throughput) => report.pruned_throughput += 1,
                        None => survivors.push(*cand),
                    }
                }
            }
            Plan::Warm(rec) => {
                for outcome in &rec.outcomes[chunk_start..chunk_end] {
                    match outcome {
                        Outcome::Memory => report.pruned_memory += 1,
                        Outcome::Feasible { cand, ub_tflops } => {
                            if best_tflops.is_some_and(|t| ub_tflops * speedup < t) {
                                report.pruned_throughput += 1;
                            } else {
                                survivors.push(*cand);
                            }
                        }
                    }
                }
            }
        });
        chunk_start = chunk_end;
        if survivors.is_empty() {
            continue;
        }
        report.simulated += survivors.len() as u64;

        // Parallel evaluation: contiguous slices of the survivor list,
        // one pool task per slice, results written into order-indexed
        // slots (no locks, no reordering). Tasks are capped so each gets
        // a few simulations — queueing a task for one candidate costs
        // more than simulating it. This affects only scheduling, never
        // results.
        let threads = threads.min(survivors.len().div_ceil(4));
        let mut slots: Vec<EvalSlot> = (0..survivors.len()).map(|_| EvalSlot::default()).collect();
        let perturbation = &opts.perturbation;
        let warm_rec: Option<&SweepRecord> = match &plan {
            Plan::Warm(rec) => Some(rec),
            Plan::Cold(_) => None,
        };
        // Lowerings are worth keeping only when they are clean bases
        // (and only the per-candidate engine records them — batched
        // runs record whole class bases instead).
        let keep_lowerings = recorder.is_some() && clean && !batched;
        counters.time("evaluate", || {
            if batched {
                evaluate_chunk_batched(
                    model,
                    cluster,
                    cache,
                    &stats,
                    &survivors,
                    &mut slots,
                    overlap,
                    kernel,
                    perturbation,
                    warm_rec,
                    &env.classes,
                    &resolved,
                    &mut class_order,
                    threads,
                    &env.executor,
                );
            } else if threads <= 1 {
                evaluate_slice(
                    model,
                    cluster,
                    cache,
                    &stats,
                    &survivors,
                    &mut slots,
                    overlap,
                    kernel,
                    perturbation,
                    warm_rec,
                    keep_lowerings,
                );
            } else {
                let per = survivors.len().div_ceil(threads).max(1);
                let stats = &stats;
                let tasks: Vec<ScopedTask<'_>> = survivors
                    .chunks(per)
                    .zip(slots.chunks_mut(per))
                    .map(|(cands, out)| {
                        let task: ScopedTask<'_> = Box::new(move || {
                            evaluate_slice(
                                model,
                                cluster,
                                cache,
                                stats,
                                cands,
                                out,
                                overlap,
                                kernel,
                                perturbation,
                                warm_rec,
                                keep_lowerings,
                            );
                        });
                        task
                    })
                    .collect();
                env.executor.scope_run(tasks);
            }
        });

        // Serial in-order reduction: strictly-greater replaces, so the
        // first of equally fast candidates wins — the exhaustive serial
        // semantics. Improvements stream to the caller from here, i.e.
        // in deterministic candidate order.
        for (cand, slot) in survivors.iter().zip(slots) {
            report.warm_hits += u64::from(slot.warm_hit);
            if let Some(lowered) = slot.lowering {
                let ops = lowered.graph.num_ops() as u64;
                if recorded_ops + ops <= record_budget {
                    recorded_ops += ops;
                    recorded_lowerings.push((*cand, lowered));
                }
            }
            let Some(m) = slot.measurement else { continue };
            if !m.fits(cluster.min_memory_bytes()) {
                continue;
            }
            let better = best
                .as_ref()
                .map(|b| m.tflops_per_gpu > b.measurement.tflops_per_gpu)
                .unwrap_or(true);
            if better {
                let result = SearchResult {
                    method,
                    kind: cand.kind,
                    cfg: cand.config_on(model, cluster),
                    overlap,
                    measurement: m,
                };
                if let Some(sink) = on_improve.as_deref_mut() {
                    sink(&result);
                }
                best = Some(result);
                best_cand = Some(*cand);
            }
        }
        if let Some(p) = progress {
            p.publish(&report, best.as_ref());
        }
    }

    // A *completed* cold search becomes a warm record (a cancelled or
    // timed-out prefix would replay as a wrong candidate set).
    if !cancelled && !timed_out {
        if let (Some(outcomes), Some(w), Some(key)) = (recorder, &env.warm, warm_key) {
            let record = SweepRecord::new(outcomes, w.record_budget());
            for (cand, lowered) in recorded_lowerings {
                record.store_lowering(cand, lowered);
            }
            // Batched runs record topology-class bases (in the serial
            // first-seen order, so storage under the shared op budget is
            // deterministic); a warm replay then re-times whole classes.
            // Bases are perturbation-independent — built from clean
            // representatives — so even a perturbed cold run records them.
            let resolved_classes = lock_resolved(&resolved);
            for class_key in &class_order {
                if let Some((base, _)) = resolved_classes.get(class_key) {
                    record.store_class(*class_key, Arc::clone(base));
                }
            }
            drop(resolved_classes);
            w.insert(key, record);
        }
    }

    report.cancelled = cancelled;
    report.timed_out = timed_out;
    report.best = best.as_ref().map(|b| b.measurement.tflops_per_gpu);
    // Robustness columns: re-simulate the winner under the standardized
    // reference straggler probe and report how much throughput survives.
    // Skipped when cancelled or timed out — the caller asked for the
    // fastest exit with best-so-far.
    if let (Some(b), false) = (&best, cancelled || timed_out) {
        counters.time("probe", || {
            let probe = Perturbation::reference_probe();
            // The probe is a duration-only delta on the winner, so a warm
            // run answers it from the recorded clean base — the same
            // bit-identical substitution as warm evaluation, skipping the
            // perturbed re-lowering entirely.
            // Batched mode answers the probe from the winner's resolved
            // class base — the same bit-identical substitution as
            // batched evaluation, no re-lowering and no CSR rebuild.
            let class_probe = if batched {
                best_cand.as_ref().and_then(|cand| {
                    let d =
                        compute_durations(model, cluster, &b.cfg, kernel, overlap.comm_multiplier);
                    let class_key = ClassKey::of(cand, overlap, &d);
                    let base = lock_resolved(&resolved)
                        .get(&class_key)
                        .map(|(base, _)| Arc::clone(base))?;
                    let mut row = vec![SimDuration::ZERO; base.num_ops()];
                    let mut factors = Vec::new();
                    base.fill_row(&d, &probe, &mut factors, &mut row);
                    let mut solve_stats = crate::batch::empty_stats();
                    let mut scratch = base.lock_scratch();
                    Some(base.measure_row(
                        &mut scratch,
                        &mut solve_stats,
                        model,
                        cluster,
                        &b.cfg,
                        &row,
                    ))
                })
            } else {
                None
            };
            let warm_base = match (&plan, &best_cand) {
                (Plan::Warm(rec), Some(cand)) => {
                    rec.lowering(cand).map(|lowered| (&**rec, cand, lowered))
                }
                _ => None,
            };
            let probed = if class_probe.is_some() {
                class_probe
            } else {
                match warm_base {
                    Some((rec, cand, lowered)) => {
                        let mut durations = Vec::new();
                        let (m, built) = measure_with_durations(
                            model,
                            cluster,
                            &b.cfg,
                            &lowered,
                            &probe,
                            &mut durations,
                            rec.take_scratch(cand),
                        );
                        rec.put_scratch(cand, built);
                        m
                    }
                    None => cache
                        .get_or_generate_tracked(
                            b.kind,
                            b.cfg.placement,
                            b.cfg.batch.num_microbatches,
                            &stats,
                        )
                        .ok()
                        .and_then(|schedule| {
                            simulate_with_schedule_perturbed(
                                model, cluster, &b.cfg, schedule, b.overlap, kernel, &probe,
                            )
                            .ok()
                        }),
                }
            };
            if let Some(m) = probed {
                report.robust_tflops = Some(m.tflops_per_gpu);
                report.retention = Some(m.tflops_per_gpu / b.measurement.tflops_per_gpu);
            }
        });
    }
    // Per-request attribution: this request's own traffic on the
    // (possibly process-shared) schedule cache, not the cache's
    // since-process-start totals — so multi-request reports sum
    // correctly. Warm lowering reuse skips the schedule cache entirely,
    // so a warm request's totals can be below `simulated`.
    counters.add("cache_hits", stats.hits());
    counters.add("cache_misses", stats.misses());
    if report.warm_hits > 0 {
        counters.add("warm_hits", report.warm_hits);
    }
    report.counters = counters;
    report.wall_time = start.elapsed();

    // Request-end telemetry: one registry touch per request, after the
    // hot loops. Candidate-flow counters and the per-request candidate
    // histograms are deterministic (thread-count-invariant, like the
    // report fields they mirror); the `*_ns` phase-span histograms and
    // the cache hit/miss counters are wall-clock/racy diagnostics and
    // are excluded from the bit-stability guarantee.
    if let Some(metrics) = env.metrics.as_deref() {
        metrics.counter_incr("search_requests_total");
        metrics.counter_add("search_candidates_enumerated_total", report.enumerated);
        metrics.counter_add(
            "search_candidates_pruned_memory_total",
            report.pruned_memory,
        );
        metrics.counter_add(
            "search_candidates_pruned_throughput_total",
            report.pruned_throughput,
        );
        metrics.counter_add("search_candidates_simulated_total", report.simulated);
        if matches!(plan, Plan::Warm(_)) {
            metrics.counter_incr("search_warm_starts_total");
        }
        metrics.counter_add("search_warm_hits_total", report.warm_hits);
        metrics.counter_add(
            "search_cache_hits_total",
            report.counters.count("cache_hits"),
        );
        metrics.counter_add(
            "search_cache_misses_total",
            report.counters.count("cache_misses"),
        );
        metrics.observe("search_enumerated_per_request", report.enumerated);
        metrics.observe("search_simulated_per_request", report.simulated);
        for phase in ["enumerate", "prune", "evaluate", "probe"] {
            let span = report.counters.span(phase);
            if span > Duration::ZERO {
                metrics.observe(
                    &format!("search_phase_{phase}_ns"),
                    span.as_nanos().min(u128::from(u64::MAX)) as u64,
                );
            }
        }
        metrics.observe(
            "search_wall_ns",
            report.wall_time.as_nanos().min(u128::from(u64::MAX)) as u64,
        );
    }
    if let Some(p) = progress {
        p.publish(&report, best.as_ref());
        p.finished.store(true, Ordering::Release);
    }
    (best, report)
}

/// Evaluates one contiguous survivor slice into its order-indexed
/// slots — the body of one pool task. Three paths, all producing
/// bit-identical measurements for the same candidate and perturbation:
/// the plain path (lower under the request's perturbation, solve), the
/// recording path (lower clean, solve, keep the lowering), and the warm
/// path (reuse a recorded clean lowering, re-solve durations only).
#[allow(clippy::too_many_arguments)]
fn evaluate_slice(
    model: &TransformerConfig,
    cluster: &ClusterSpec,
    cache: &ScheduleCache,
    stats: &CacheStats,
    cands: &[Candidate],
    out: &mut [EvalSlot],
    overlap: OverlapConfig,
    kernel: &KernelModel,
    perturbation: &Perturbation,
    warm_rec: Option<&SweepRecord>,
    keep_lowerings: bool,
) {
    let mut durations: Vec<SimDuration> = Vec::new();
    for (cand, slot) in cands.iter().zip(out.iter_mut()) {
        let cfg = cand.config_on(model, cluster);
        if let Some(rec) = warm_rec {
            let lowered = match rec.lowering(cand) {
                Some(lowered) => {
                    slot.warm_hit = true;
                    lowered
                }
                None => {
                    // Budget-evicted (or recorded by a perturbed cold
                    // run): rebuild the clean base and re-offer it.
                    let Ok(schedule) = cache.get_or_generate_tracked(
                        cand.kind,
                        cfg.placement,
                        cfg.batch.num_microbatches,
                        stats,
                    ) else {
                        continue;
                    };
                    let Ok(lowered) =
                        lower_with_schedule(model, cluster, &cfg, schedule, overlap, kernel)
                    else {
                        continue;
                    };
                    let lowered = Arc::new(lowered);
                    rec.store_lowering(*cand, Arc::clone(&lowered));
                    lowered
                }
            };
            let (measurement, built) = measure_with_durations(
                model,
                cluster,
                &cfg,
                &lowered,
                perturbation,
                &mut durations,
                rec.take_scratch(cand),
            );
            slot.measurement = measurement;
            rec.put_scratch(cand, built);
        } else {
            let Ok(schedule) = cache.get_or_generate_tracked(
                cand.kind,
                cfg.placement,
                cfg.batch.num_microbatches,
                stats,
            ) else {
                continue;
            };
            if keep_lowerings {
                let Ok(lowered) =
                    lower_with_schedule(model, cluster, &cfg, schedule, overlap, kernel)
                else {
                    continue;
                };
                slot.measurement = Some(measure_lowered(model, cluster, &cfg, &lowered));
                slot.lowering = Some(Arc::new(lowered));
            } else {
                slot.measurement = simulate_with_schedule_perturbed(
                    model,
                    cluster,
                    &cfg,
                    schedule,
                    overlap,
                    kernel,
                    perturbation,
                )
                .ok();
            }
        }
    }
}

/// One batched survivor: its original chunk position plus the
/// per-candidate inputs the class evaluator needs.
struct BatchItem {
    cand_idx: usize,
    cfg: ParallelConfig,
    d: Durations,
}

fn lock_resolved<'a>(
    resolved: &'a Mutex<HashMap<ClassKey, (Arc<ClassBase>, bool)>>,
) -> std::sync::MutexGuard<'a, HashMap<ClassKey, (Arc<ClassBase>, bool)>> {
    match resolved.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Batched chunk evaluation: a serial pre-pass validates each survivor,
/// computes its analytic durations, and groups survivors by topology
/// class in first-seen order; the groups are then split into at most
/// `threads` contiguous pool tasks (work-stealing granularity = a batch
/// of classes), each of which resolves its classes' bases and re-times
/// members by SoA trace replay. Bit-identical to [`evaluate_slice`] per
/// candidate: validation failures leave the same empty slots, a class
/// whose schedule cannot generate (or whose topology deadlocks) fails
/// exactly the candidates the per-candidate path would fail, and row
/// fill + replay reproduce lower + solve to the bit.
#[allow(clippy::too_many_arguments)]
fn evaluate_chunk_batched(
    model: &TransformerConfig,
    cluster: &ClusterSpec,
    cache: &ScheduleCache,
    stats: &CacheStats,
    survivors: &[Candidate],
    slots: &mut [EvalSlot],
    overlap: OverlapConfig,
    kernel: &KernelModel,
    perturbation: &Perturbation,
    warm_rec: Option<&SweepRecord>,
    classes: &ClassCache,
    resolved: &Mutex<HashMap<ClassKey, (Arc<ClassBase>, bool)>>,
    class_order: &mut Vec<ClassKey>,
    threads: usize,
    executor: &Executor,
) {
    // Serial pre-pass: deterministic grouping in first-seen key order.
    let mut groups: Vec<(ClassKey, Vec<BatchItem>)> = Vec::new();
    let mut group_index: HashMap<ClassKey, usize> = HashMap::new();
    for (cand_idx, cand) in survivors.iter().enumerate() {
        let cfg = cand.config_on(model, cluster);
        if cfg.validate(model, cluster).is_err() {
            // Slot stays empty — the per-candidate path fails the same
            // candidate inside lowering.
            continue;
        }
        let d = compute_durations(model, cluster, &cfg, kernel, overlap.comm_multiplier);
        let key = ClassKey::of(cand, overlap, &d);
        let gi = match group_index.get(&key) {
            Some(&gi) => gi,
            None => {
                group_index.insert(key, groups.len());
                if !class_order.contains(&key) {
                    class_order.push(key);
                }
                groups.push((key, Vec::new()));
                groups.len() - 1
            }
        };
        groups[gi].1.push(BatchItem { cand_idx, cfg, d });
    }
    if groups.is_empty() {
        return;
    }

    // Evaluate into group-contiguous slots, then scatter back to chunk
    // order (groups partition the survivor indices, so the scatter is a
    // move per member). Each class is resolved by exactly one task —
    // groups never split across tasks.
    let total: usize = groups.iter().map(|(_, members)| members.len()).sum();
    let mut out: Vec<EvalSlot> = (0..total).map(|_| EvalSlot::default()).collect();
    let task_count = threads.clamp(1, groups.len());
    let per = groups.len().div_ceil(task_count);
    if task_count <= 1 {
        eval_groups(
            model,
            cluster,
            cache,
            stats,
            &groups,
            &mut out,
            overlap,
            kernel,
            perturbation,
            warm_rec,
            classes,
            resolved,
        );
    } else {
        let mut tasks: Vec<ScopedTask<'_>> = Vec::with_capacity(task_count);
        let mut rest: &mut [EvalSlot] = &mut out;
        for gchunk in groups.chunks(per) {
            let n: usize = gchunk.iter().map(|(_, members)| members.len()).sum();
            let (mine, tail) = rest.split_at_mut(n);
            rest = tail;
            let task: ScopedTask<'_> = Box::new(move || {
                eval_groups(
                    model,
                    cluster,
                    cache,
                    stats,
                    gchunk,
                    mine,
                    overlap,
                    kernel,
                    perturbation,
                    warm_rec,
                    classes,
                    resolved,
                );
            });
            tasks.push(task);
        }
        executor.scope_run(tasks);
    }

    let mut pos = 0;
    for (_, members) in &groups {
        for item in members {
            slots[item.cand_idx] = std::mem::take(&mut out[pos]);
            pos += 1;
        }
    }
}

/// Evaluates a contiguous run of class groups into their group-ordered
/// slots — the body of one batched pool task.
#[allow(clippy::too_many_arguments)]
fn eval_groups(
    model: &TransformerConfig,
    cluster: &ClusterSpec,
    cache: &ScheduleCache,
    stats: &CacheStats,
    groups: &[(ClassKey, Vec<BatchItem>)],
    out: &mut [EvalSlot],
    overlap: OverlapConfig,
    kernel: &KernelModel,
    perturbation: &Perturbation,
    warm_rec: Option<&SweepRecord>,
    classes: &ClassCache,
    resolved: &Mutex<HashMap<ClassKey, (Arc<ClassBase>, bool)>>,
) {
    let mut factors: Vec<f64> = Vec::new();
    let mut solve_stats = crate::batch::empty_stats();
    let mut pos = 0;
    for (key, members) in groups {
        let slots = &mut out[pos..pos + members.len()];
        pos += members.len();

        // Resolve the class base: request-local map (stable provenance)
        // → warm record → shared class cache → build from a clean
        // representative. A failed resolution fails the whole class,
        // which is per-candidate parity: schedule generation and
        // deadlock depend only on class-level inputs.
        let hit = lock_resolved(resolved).get(key).cloned();
        let (base, from_record) = match hit {
            Some(found) => found,
            None => {
                let (built, from_record) = if let Some(b) =
                    warm_rec.and_then(|rec| rec.class_base(key))
                {
                    (Some(b), true)
                } else if let Some(b) = classes.lookup(key) {
                    (Some(b), false)
                } else {
                    let rep = &members[0];
                    let built = cache
                        .get_or_generate_tracked(
                            key.schedule_kind(),
                            rep.cfg.placement,
                            rep.cfg.batch.num_microbatches,
                            stats,
                        )
                        .ok()
                        .and_then(|schedule| {
                            lower_with_schedule(model, cluster, &rep.cfg, schedule, overlap, kernel)
                                .ok()
                        })
                        .and_then(|lowered| ClassBase::build(rep.cfg.dp, &lowered))
                        .map(Arc::new);
                    if let Some(b) = &built {
                        classes.insert(*key, Arc::clone(b));
                        if let Some(rec) = warm_rec {
                            // A rebuilt evicted base is re-offered to
                            // the record for the next replay.
                            rec.store_class(*key, Arc::clone(b));
                        }
                    }
                    (built, false)
                };
                let Some(b) = built else { continue };
                lock_resolved(resolved).insert(*key, (Arc::clone(&b), from_record));
                (b, from_record)
            }
        };

        // One SoA duration batch per class: a contiguous row per member,
        // re-timed against the single prebuilt workspace.
        let mut batch = DurationMatrix::new(base.num_ops());
        for item in members {
            base.fill_row(&item.d, perturbation, &mut factors, batch.push_row());
        }
        let mut scratch = base.lock_scratch();
        for (row, (item, slot)) in members.iter().zip(slots.iter_mut()).enumerate() {
            slot.measurement = Some(base.measure_row(
                &mut scratch,
                &mut solve_stats,
                model,
                cluster,
                &item.cfg,
                batch.row(row),
            ));
            slot.warm_hit = from_record;
        }
    }
}

/// The layered engine's winner, without the report.
pub fn best_config(
    model: &TransformerConfig,
    cluster: &ClusterSpec,
    method: Method,
    global_batch: u64,
    kernel: &KernelModel,
    opts: &SearchOptions,
) -> Option<SearchResult> {
    best_config_with_report(model, cluster, method, global_batch, kernel, opts).0
}

/// The exhaustive serial reference: simulates *every* enumerated
/// candidate, no pruning, no caching, no threads. [`best_config`] is
/// verified (by test and by property test) to return exactly this.
pub fn best_config_exhaustive(
    model: &TransformerConfig,
    cluster: &ClusterSpec,
    method: Method,
    global_batch: u64,
    kernel: &KernelModel,
    opts: &SearchOptions,
) -> Option<SearchResult> {
    let overlap = method.overlap();
    let mut best: Option<SearchResult> = None;
    for cand in enumerate(model, cluster, method, global_batch, opts) {
        let cfg = cand.config_on(model, cluster);
        let Ok(m) = simulate_perturbed(
            model,
            cluster,
            &cfg,
            cand.kind,
            overlap,
            kernel,
            &opts.perturbation,
        ) else {
            continue;
        };
        if !m.fits(cluster.min_memory_bytes()) {
            continue;
        }
        let better = best
            .as_ref()
            .map(|b| m.tflops_per_gpu > b.measurement.tflops_per_gpu)
            .unwrap_or(true);
        if better {
            best = Some(SearchResult {
                method,
                kind: cand.kind,
                cfg,
                overlap,
                measurement: m,
            });
        }
    }
    best
}

/// Runs [`best_config`] over a set of batch sizes — one Figure 5 line.
pub fn sweep(
    model: &TransformerConfig,
    cluster: &ClusterSpec,
    method: Method,
    batches: &[u64],
    kernel: &KernelModel,
    opts: &SearchOptions,
) -> Vec<(u64, Option<SearchResult>)> {
    batches
        .iter()
        .map(|&b| (b, best_config(model, cluster, method, b, kernel, opts)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::simulate;
    use bfpp_cluster::presets;
    use bfpp_model::presets as models;

    fn quick_opts() -> SearchOptions {
        SearchOptions {
            max_microbatch: 8,
            max_loop: 16,
            max_actions: 60_000,
            ..SearchOptions::default()
        }
    }

    #[test]
    fn methods_have_labels_and_variants() {
        for m in Method::ALL {
            assert!(!m.label().is_empty());
            assert!(!m.dp_variants().is_empty());
        }
        assert_eq!(Method::DepthFirst.overlap(), OverlapConfig::megatron());
        assert_eq!(Method::BreadthFirst.overlap(), OverlapConfig::full());
        assert_eq!(Method::BreadthFirst.to_string(), "Breadth-first");
    }

    #[test]
    fn breadth_first_wins_at_small_batch_52b() {
        // The paper's headline (Figure 5a): near β_min, breadth-first
        // outperforms both the non-looped and depth-first baselines.
        let model = models::bert_52b();
        let cluster = presets::dgx1_v100(8);
        let k = KernelModel::v100();
        let opts = quick_opts();
        let b = 9;
        let bf = best_config(&model, &cluster, Method::BreadthFirst, b, &k, &opts)
            .expect("breadth-first must have a feasible config at batch 9");
        // Batch 9 is awkward for the baselines (9 = 3^2): give them their
        // best nearby batch (8) as the paper's Figure 5a does.
        let nl = best_config(&model, &cluster, Method::NonLooped, 8, &k, &opts)
            .expect("non-looped feasible at batch 8");
        let df = best_config(&model, &cluster, Method::DepthFirst, 8, &k, &opts)
            .expect("depth-first feasible at batch 8");
        assert!(
            bf.measurement.tflops_per_gpu > nl.measurement.tflops_per_gpu,
            "bf {} !> non-looped {}",
            bf.measurement.tflops_per_gpu,
            nl.measurement.tflops_per_gpu
        );
        assert!(
            bf.measurement.tflops_per_gpu > df.measurement.tflops_per_gpu,
            "bf {} !> depth-first {}",
            bf.measurement.tflops_per_gpu,
            df.measurement.tflops_per_gpu
        );
        // And the winning config is looped.
        assert!(bf.cfg.placement.is_looping());
    }

    #[test]
    fn no_pipeline_catches_up_at_large_batch() {
        // Figure 5a: the non-pipelined approach achieves high utilization
        // only at a high batch size per GPU.
        let model = models::bert_52b();
        let cluster = presets::dgx1_v100(8);
        let k = KernelModel::v100();
        let opts = quick_opts();
        let small = best_config(&model, &cluster, Method::NoPipeline, 8, &k, &opts)
            .expect("feasible")
            .measurement
            .tflops_per_gpu;
        let large = best_config(&model, &cluster, Method::NoPipeline, 512, &k, &opts)
            .expect("feasible")
            .measurement
            .tflops_per_gpu;
        assert!(
            large > 3.0 * small,
            "no-pipeline must be steep in batch size: {small} -> {large}"
        );
    }

    #[test]
    fn sweep_covers_all_batches() {
        let model = models::bert_6_6b();
        let cluster = presets::dgx1_v100(8);
        let k = KernelModel::v100();
        let opts = quick_opts();
        let rows = sweep(&model, &cluster, Method::BreadthFirst, &[16, 64], &k, &opts);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|(_, r)| r.is_some()));
        // Larger batch should not be slower for the same method.
        let t16 = rows[0].1.as_ref().unwrap().measurement.tflops_per_gpu;
        let t64 = rows[1].1.as_ref().unwrap().measurement.tflops_per_gpu;
        assert!(
            t64 >= t16 * 0.95,
            "bf 16 -> 64 should not regress: {t16} {t64}"
        );
    }

    #[test]
    fn infeasible_batch_returns_none() {
        let model = models::bert_52b();
        let cluster = presets::dgx1_v100(8);
        let k = KernelModel::v100();
        let opts = quick_opts();
        // Batch 7 with no-pipeline: no n_dp drawn from the 64-GPU grid
        // divides 7, so nothing is even enumerable.
        let (r, report) =
            best_config_with_report(&model, &cluster, Method::NoPipeline, 7, &k, &opts);
        assert!(r.is_none());
        assert_eq!(report.enumerated, 0);
        assert_eq!(report.best, None);
    }

    #[test]
    fn engine_is_thread_count_invariant_and_matches_exhaustive() {
        let model = models::bert_6_6b();
        let cluster = presets::dgx1_v100(8);
        let k = KernelModel::v100();
        let opts = quick_opts();
        let reference =
            best_config_exhaustive(&model, &cluster, Method::BreadthFirst, 16, &k, &opts);
        assert!(reference.is_some());
        let mut first_report: Option<SearchReport> = None;
        for threads in [1usize, 2, 5] {
            let opts = SearchOptions {
                threads,
                ..quick_opts()
            };
            let (r, report) =
                best_config_with_report(&model, &cluster, Method::BreadthFirst, 16, &k, &opts);
            assert_eq!(
                r, reference,
                "threads={threads} must match the serial reference"
            );
            assert_eq!(
                report.enumerated,
                report.pruned_memory + report.pruned_throughput + report.simulated,
                "every candidate is pruned or simulated"
            );
            assert_eq!(report.best, r.map(|r| r.measurement.tflops_per_gpu));
            if let Some(prev) = &first_report {
                assert_eq!(
                    (
                        prev.enumerated,
                        prev.pruned_memory,
                        prev.pruned_throughput,
                        prev.simulated
                    ),
                    (
                        report.enumerated,
                        report.pruned_memory,
                        report.pruned_throughput,
                        report.simulated
                    ),
                    "threads={threads}: counters must be thread-count-independent"
                );
            } else {
                first_report = Some(report);
            }
        }
    }

    #[test]
    fn ties_resolve_to_the_first_enumerated() {
        // On a single pipeline stage, GPipe and 1F1B order the same
        // kernels differently on one FIFO stream — identical batch time,
        // a genuine throughput tie. The tie must resolve to GPipe, the
        // earlier kind in enumeration (and Candidate) order.
        let model = models::bert_6_6b();
        let cluster = presets::dgx1_v100(1);
        let k = KernelModel::v100();
        let opts = SearchOptions {
            threads: 2,
            ..quick_opts()
        };
        let r = best_config(&model, &cluster, Method::NoPipeline, 64, &k, &opts)
            .expect("no-pipeline feasible at batch 64");
        let other = simulate(
            &model,
            &cluster,
            &r.cfg,
            ScheduleKind::OneFOneB,
            r.overlap,
            &k,
        )
        .expect("same config must simulate under the other kind");
        assert_eq!(
            other.tflops_per_gpu, r.measurement.tflops_per_gpu,
            "the tie must be real"
        );
        assert_eq!(r.kind, ScheduleKind::GPipe, "first in order wins the tie");
    }

    #[test]
    fn pruning_actually_prunes() {
        let model = models::bert_52b();
        let cluster = presets::dgx1_v100(8);
        let k = KernelModel::v100();
        let (r, report) = best_config_with_report(
            &model,
            &cluster,
            Method::BreadthFirst,
            48,
            &k,
            &quick_opts(),
        );
        assert!(r.is_some());
        assert!(
            report.pruned_memory + report.pruned_throughput > 0,
            "the 52B sweep must reject something analytically: {report:?}"
        );
        assert!(report.simulated < report.enumerated);
        assert!(report.wall_time > Duration::ZERO);
    }

    #[test]
    fn report_csv_round_trip() {
        let report = SearchReport {
            enumerated: 100,
            pruned_memory: 40,
            pruned_throughput: 30,
            simulated: 30,
            wall_time: Duration::from_millis(12),
            best: Some(51.5),
            robust_tflops: Some(45.2),
            retention: Some(0.877),
            warm_hits: 3,
            cancelled: false,
            timed_out: false,
            counters: Counters::new(),
        };
        assert_eq!(
            SearchReport::csv_header().split(',').count(),
            report.csv_row().split(',').count()
        );
        assert!(report.csv_row().starts_with("100,40,30,30,"));
        assert!(report.csv_row().ends_with("45.20,87.7"));
        // A report with no winner renders placeholders, same column count.
        let empty = SearchReport::default();
        assert_eq!(
            SearchReport::csv_header().split(',').count(),
            empty.csv_row().split(',').count()
        );
        assert!(empty.csv_row().ends_with("-,-"));

        let mut total = SearchReport::default();
        total.accumulate(&report);
        total.accumulate(&SearchReport {
            enumerated: 10,
            best: Some(60.0),
            robust_tflops: Some(40.0),
            retention: Some(0.66),
            ..SearchReport::default()
        });
        assert_eq!(total.enumerated, 110);
        assert_eq!(total.best, Some(60.0));
        assert_eq!(total.robust_tflops, Some(45.2), "max of the cells");
        assert_eq!(total.retention, Some(0.66), "most fragile cell");
    }

    #[test]
    fn report_counters_record_phases_and_cache_traffic() {
        let model = models::bert_6_6b();
        let cluster = presets::dgx1_v100(8);
        let k = KernelModel::v100();
        // The per-candidate path consults the schedule cache once per
        // simulated candidate; the batched path consults it at most
        // once per topology class (and not at all when the global class
        // cache is already warm), so the strict traffic assertions only
        // hold per-candidate.
        let opts = SearchOptions {
            eval: EvalMode::PerCandidate,
            ..quick_opts()
        };
        let (r, report) =
            best_config_with_report(&model, &cluster, Method::BreadthFirst, 16, &k, &opts);
        assert!(r.is_some());
        let c = &report.counters;
        assert!(
            c.count("cache_hits") + c.count("cache_misses") >= report.simulated,
            "every simulated candidate consults the schedule cache: {c:?}"
        );
        assert!(c.count("cache_hits") > 0, "repeat keys must hit");
        for phase in ["enumerate", "prune", "evaluate", "probe"] {
            assert!(
                c.spans().any(|(name, _)| name == phase),
                "missing phase span {phase}: {c:?}"
            );
        }
        assert!(c.render().contains("cache_hits="));

        // Accumulation folds counters like the other columns.
        let mut total = SearchReport::default();
        total.accumulate(&report);
        total.accumulate(&report);
        assert_eq!(
            total.counters.count("cache_misses"),
            2 * c.count("cache_misses")
        );
    }

    #[test]
    fn search_report_carries_robustness_columns() {
        let model = models::bert_6_6b();
        let cluster = presets::dgx1_v100(8);
        let k = KernelModel::v100();
        let (r, report) = best_config_with_report(
            &model,
            &cluster,
            Method::BreadthFirst,
            16,
            &k,
            &quick_opts(),
        );
        assert!(r.is_some());
        let robust = report.robust_tflops.expect("winner must be probed");
        let retention = report.retention.expect("retention derived from probe");
        assert!(robust > 0.0);
        assert!(
            retention > 0.0 && retention <= 1.0,
            "a 1.5x straggler cannot speed training up: {retention}"
        );
    }

    #[test]
    fn perturbed_search_is_thread_invariant_and_matches_exhaustive() {
        let model = models::bert_6_6b();
        let cluster = presets::dgx1_v100(8);
        let k = KernelModel::v100();
        let perturbed = SearchOptions {
            perturbation: Perturbation::with_seed(11)
                .with_straggler(2, 1.3)
                .with_jitter(0.05),
            ..quick_opts()
        };
        let reference =
            best_config_exhaustive(&model, &cluster, Method::BreadthFirst, 16, &k, &perturbed);
        assert!(reference.is_some());
        let mut first: Option<(Option<SearchResult>, SearchReport)> = None;
        for threads in [1usize, 3] {
            let opts = SearchOptions {
                threads,
                ..perturbed.clone()
            };
            let (r, report) =
                best_config_with_report(&model, &cluster, Method::BreadthFirst, 16, &k, &opts);
            assert_eq!(
                r, reference,
                "threads={threads}: perturbed winner must match the serial reference"
            );
            if let Some((pr, prep)) = &first {
                assert_eq!(&r, pr, "threads={threads}: winner bit-identical");
                assert_eq!(
                    (
                        prep.enumerated,
                        prep.pruned_memory,
                        prep.pruned_throughput,
                        prep.simulated
                    ),
                    (
                        report.enumerated,
                        report.pruned_memory,
                        report.pruned_throughput,
                        report.simulated
                    ),
                    "threads={threads}: perturbed counters thread-invariant"
                );
                assert_eq!(prep.robust_tflops, report.robust_tflops);
            } else {
                first = Some((r, report));
            }
        }
    }

    #[test]
    fn warm_start_replays_bit_identically_and_reuses_lowerings() {
        let model = models::bert_6_6b();
        let cluster = presets::dgx1_v100(8);
        let k = KernelModel::v100();
        let env = SearchEnv::service();
        let opts = quick_opts();

        // Cold request populates the warm store.
        let (cold_r, cold_rep) = search_streaming(
            &model,
            &cluster,
            Method::BreadthFirst,
            16,
            &k,
            &opts,
            &env,
            None,
            None,
        );
        assert!(cold_r.is_some());
        assert_eq!(cold_rep.warm_hits, 0, "nothing to reuse on a cold run");
        assert_eq!(env.warm.as_ref().unwrap().len(), 1);

        // A duration-only delta (new perturbation) warm-starts: same
        // signature, re-solved durations, zero re-enumeration — and the
        // result must be bit-identical to a fresh cold search of the
        // perturbed request.
        let perturbed = SearchOptions {
            perturbation: Perturbation::with_seed(7).with_straggler(3, 1.4),
            ..quick_opts()
        };
        let (warm_r, warm_rep) = search_streaming(
            &model,
            &cluster,
            Method::BreadthFirst,
            16,
            &k,
            &perturbed,
            &env,
            None,
            None,
        );
        let (ref_r, ref_rep) =
            best_config_with_report(&model, &cluster, Method::BreadthFirst, 16, &k, &perturbed);
        assert_eq!(warm_r, ref_r, "warm replay must match the cold engine");
        assert_eq!(
            (
                warm_rep.enumerated,
                warm_rep.pruned_memory,
                warm_rep.pruned_throughput,
                warm_rep.simulated,
                warm_rep.best,
                warm_rep.robust_tflops,
            ),
            (
                ref_rep.enumerated,
                ref_rep.pruned_memory,
                ref_rep.pruned_throughput,
                ref_rep.simulated,
                ref_rep.best,
                ref_rep.robust_tflops,
            ),
            "warm counters must match the cold engine's"
        );
        assert!(
            warm_rep.warm_hits > 0,
            "clean-run lowerings must be reused: {warm_rep:?}"
        );
        assert_eq!(warm_rep.counters.count("warm_start"), 1);
        assert_eq!(env.warm.as_ref().unwrap().warm_starts(), 1);

        // Identity warm replay reproduces the cold run exactly too.
        let (again_r, again_rep) = search_streaming(
            &model,
            &cluster,
            Method::BreadthFirst,
            16,
            &k,
            &opts,
            &env,
            None,
            None,
        );
        assert_eq!(again_r, cold_r);
        assert_eq!(again_rep.simulated, cold_rep.simulated);
        assert!(again_rep.warm_hits > 0);
    }

    #[test]
    fn warm_records_are_keyed_by_kernel() {
        // Recorded lowerings bake the kernel's durations in, and the
        // recorded throughput bounds come from it — a request differing
        // only in kernel must cold-search, not warm-hit the other
        // kernel's record, and must match its own fresh cold engine.
        let model = models::bert_6_6b();
        let cluster = presets::dgx1_v100(8);
        let env = SearchEnv::service();
        let opts = quick_opts();

        let v100 = KernelModel::v100();
        let (v100_r, _) = search_streaming(
            &model,
            &cluster,
            Method::BreadthFirst,
            16,
            &v100,
            &opts,
            &env,
            None,
            None,
        );
        assert!(v100_r.is_some());
        assert_eq!(env.warm.as_ref().unwrap().len(), 1);

        let a100 = KernelModel::a100();
        let (a100_r, a100_rep) = search_streaming(
            &model,
            &cluster,
            Method::BreadthFirst,
            16,
            &a100,
            &opts,
            &env,
            None,
            None,
        );
        assert_eq!(
            a100_rep.counters.count("warm_start"),
            0,
            "a different kernel must not warm-hit"
        );
        assert_eq!(a100_rep.warm_hits, 0);
        assert_eq!(env.warm.as_ref().unwrap().len(), 2, "separate records");
        let (ref_r, _) =
            best_config_with_report(&model, &cluster, Method::BreadthFirst, 16, &a100, &opts);
        assert_eq!(a100_r, ref_r, "must equal a fresh cold a100 search");
        assert_ne!(
            v100_r.as_ref().map(|r| r.measurement.tflops_per_gpu),
            a100_r.as_ref().map(|r| r.measurement.tflops_per_gpu),
            "the kernels must actually measure differently for this test to bite"
        );
    }

    #[test]
    fn warm_invalidation_is_keyed_by_model_and_cluster() {
        let model = models::bert_6_6b();
        let other_model = models::bert_52b();
        let cluster = presets::dgx1_v100(8);
        let k = KernelModel::v100();
        let env = SearchEnv::service();
        let opts = quick_opts();
        for m in [&model, &other_model] {
            search_streaming(
                m,
                &cluster,
                Method::BreadthFirst,
                16,
                &k,
                &opts,
                &env,
                None,
                None,
            );
        }
        let warm = env.warm.as_ref().unwrap();
        assert_eq!(warm.len(), 2);
        assert_eq!(warm.invalidate(&model, &cluster), 1, "drops one scope only");
        assert_eq!(warm.len(), 1);
        assert_eq!(warm.invalidate(&model, &cluster), 0);
        warm.clear();
        assert!(warm.is_empty());
    }

    #[test]
    fn cancellation_stops_early_and_streams_report_it() {
        let model = models::bert_6_6b();
        let cluster = presets::dgx1_v100(8);
        let k = KernelModel::v100();
        let opts = quick_opts();
        let cancel = AtomicBool::new(true); // cancelled before the first chunk
        let (r, report) = search_streaming(
            &model,
            &cluster,
            Method::BreadthFirst,
            16,
            &k,
            &opts,
            &SearchEnv::private(),
            Some(&cancel),
            None,
        );
        assert!(r.is_none(), "no chunk ran");
        assert!(report.cancelled);
        assert_eq!(report.simulated, 0);
        assert!(report.robust_tflops.is_none(), "probe skipped on cancel");

        // A cancelled cold run must not poison the warm store with a
        // partial record.
        let env = SearchEnv::service();
        let (_, rep) = search_streaming(
            &model,
            &cluster,
            Method::BreadthFirst,
            16,
            &k,
            &opts,
            &env,
            Some(&cancel),
            None,
        );
        assert!(rep.cancelled);
        assert!(env.warm.as_ref().unwrap().is_empty());
    }

    #[test]
    fn candidate_budget_truncates_deterministically() {
        let model = models::bert_6_6b();
        let cluster = presets::dgx1_v100(8);
        let k = KernelModel::v100();
        let full = best_config_with_report(
            &model,
            &cluster,
            Method::BreadthFirst,
            16,
            &k,
            &quick_opts(),
        );
        assert!(full.1.enumerated > EVAL_CHUNK as u64, "needs >1 chunk");

        let opts = SearchOptions {
            max_candidates: Some(EVAL_CHUNK as u64),
            ..quick_opts()
        };
        let mut first: Option<(Option<SearchResult>, SearchReport)> = None;
        for threads in [1usize, 3] {
            let opts = SearchOptions {
                threads,
                ..opts.clone()
            };
            let (r, rep) =
                best_config_with_report(&model, &cluster, Method::BreadthFirst, 16, &k, &opts);
            assert!(rep.timed_out, "budget must truncate: {rep:?}");
            assert!(!rep.cancelled);
            assert_eq!(
                rep.pruned_memory + rep.pruned_throughput + rep.simulated,
                EVAL_CHUNK as u64,
                "exactly one chunk visited"
            );
            assert!(rep.robust_tflops.is_none(), "probe skipped on budget exit");
            if let Some((pr, prep)) = &first {
                assert_eq!(&r, pr, "threads={threads}: truncation is deterministic");
                assert_eq!(prep.simulated, rep.simulated);
            } else {
                first = Some((r, rep));
            }
        }

        // A truncated cold run must not poison the warm store.
        let env = SearchEnv::service();
        let (_, rep) = search_streaming(
            &model,
            &cluster,
            Method::BreadthFirst,
            16,
            &k,
            &opts,
            &env,
            None,
            None,
        );
        assert!(rep.timed_out);
        assert!(env.warm.as_ref().unwrap().is_empty());
    }

    #[test]
    fn expired_deadline_returns_best_so_far_immediately() {
        let model = models::bert_6_6b();
        let cluster = presets::dgx1_v100(8);
        let k = KernelModel::v100();
        let opts = SearchOptions {
            deadline: Some(Duration::ZERO),
            ..quick_opts()
        };
        let (r, rep) =
            best_config_with_report(&model, &cluster, Method::BreadthFirst, 16, &k, &opts);
        assert!(
            r.is_none(),
            "no chunk ran under an already-expired deadline"
        );
        assert!(rep.timed_out);
        assert_eq!(rep.simulated, 0);
        assert!(rep.enumerated > 0, "enumeration itself is accounted");
    }

    #[test]
    fn streaming_improvements_arrive_in_order_and_end_at_the_winner() {
        let model = models::bert_6_6b();
        let cluster = presets::dgx1_v100(8);
        let k = KernelModel::v100();
        let opts = quick_opts();
        let mut seen: Vec<f64> = Vec::new();
        let mut sink = |r: &SearchResult| seen.push(r.measurement.tflops_per_gpu);
        let (r, _) = search_streaming(
            &model,
            &cluster,
            Method::BreadthFirst,
            16,
            &k,
            &opts,
            &SearchEnv::private(),
            None,
            Some(&mut sink),
        );
        let r = r.expect("feasible");
        assert!(!seen.is_empty());
        assert!(
            seen.windows(2).all(|w| w[1] > w[0]),
            "each streamed candidate strictly improves: {seen:?}"
        );
        assert_eq!(*seen.last().unwrap(), r.measurement.tflops_per_gpu);
    }

    #[test]
    fn zero_magnitude_perturbation_searches_identically() {
        // A seeded perturbation with no magnitudes is the identity: the
        // whole search — winner, counters, everything but wall time —
        // must be bit-identical to the unperturbed engine.
        let model = models::bert_6_6b();
        let cluster = presets::dgx1_v100(8);
        let k = KernelModel::v100();
        let (clean_r, clean_rep) = best_config_with_report(
            &model,
            &cluster,
            Method::BreadthFirst,
            16,
            &k,
            &quick_opts(),
        );
        let opts = SearchOptions {
            perturbation: Perturbation::with_seed(0xDEAD),
            ..quick_opts()
        };
        let (r, rep) =
            best_config_with_report(&model, &cluster, Method::BreadthFirst, 16, &k, &opts);
        assert_eq!(r, clean_r);
        assert_eq!(
            (
                rep.enumerated,
                rep.pruned_memory,
                rep.pruned_throughput,
                rep.simulated,
                rep.best
            ),
            (
                clean_rep.enumerated,
                clean_rep.pruned_memory,
                clean_rep.pruned_throughput,
                clean_rep.simulated,
                clean_rep.best
            )
        );
    }
}
