//! Configuration search: the paper's §5.1 methodology.
//!
//! "To ensure a fair comparison, we tested a wide variety of
//! configurations in each case and selected the fastest one." For each
//! *method* (the four lines of Figure 5) and each global batch size, we
//! enumerate every valid combination of tensor/pipeline/data parallelism,
//! micro-batch shape, loop count and sharding level, simulate each, drop
//! those that do not fit device memory, and keep the fastest.
//!
//! Baseline fidelity: the depth-first method is simulated like the
//! paper's Megatron-LM baseline — no network overlap, no sharding
//! (§5.1) — and each method searches the same sharding levels the paper
//! tried (Tables E.1–E.3 footnote 2: "DP_FS for breadth-first and
//! non-pipelined, DP_PS for non-looped").

use bfpp_cluster::ClusterSpec;
use bfpp_core::ScheduleKind;
use bfpp_model::TransformerConfig;
use bfpp_parallel::{BatchConfig, DataParallelism, Grid, ParallelConfig, Placement};

use crate::kernel::KernelModel;
use crate::measure::{simulate, Measurement};
use crate::overlap::OverlapConfig;

/// The four methods compared in Figure 5 and Tables E.1–E.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// The paper's breadth-first looping pipeline.
    BreadthFirst,
    /// Depth-first looping pipeline (Megatron-LM interleaved baseline).
    DepthFirst,
    /// Non-looped pipeline (GPipe / 1F1B).
    NonLooped,
    /// No pipeline: data (+ tensor) parallelism only.
    NoPipeline,
}

impl Method {
    /// All methods, paper order.
    pub const ALL: [Method; 4] = [
        Method::BreadthFirst,
        Method::DepthFirst,
        Method::NonLooped,
        Method::NoPipeline,
    ];

    /// The label used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Method::BreadthFirst => "Breadth-first",
            Method::DepthFirst => "Depth-first",
            Method::NonLooped => "Non-looped",
            Method::NoPipeline => "No pipeline",
        }
    }

    /// The schedule kinds this method may use.
    fn kinds(&self) -> &'static [ScheduleKind] {
        match self {
            Method::BreadthFirst => &[ScheduleKind::BreadthFirst],
            Method::DepthFirst => &[ScheduleKind::DepthFirst],
            // "Non-looped" tries both classic schedules; "no pipeline"
            // tries both gradient-accumulation orders (Appendix C:
            // breadth-first = GPipe order, depth-first = 1F1B order).
            Method::NonLooped => &[ScheduleKind::GPipe, ScheduleKind::OneFOneB],
            Method::NoPipeline => &[ScheduleKind::GPipe, ScheduleKind::OneFOneB],
        }
    }

    /// The sharding levels the paper tried for this method.
    fn dp_variants(&self) -> &'static [DataParallelism] {
        match self {
            Method::BreadthFirst | Method::NoPipeline => &[
                DataParallelism::Unsharded,
                DataParallelism::FullySharded,
            ],
            Method::NonLooped => &[
                DataParallelism::Unsharded,
                DataParallelism::PartiallySharded,
            ],
            // Megatron-LM baseline: unsharded only.
            Method::DepthFirst => &[DataParallelism::Unsharded],
        }
    }

    /// The overlap capability of this method's implementation (§5.1:
    /// Megatron-LM supports neither data- nor pipeline-parallel overlap,
    /// and pays synchronization overhead around each transfer).
    pub fn overlap(&self) -> OverlapConfig {
        match self {
            Method::DepthFirst => OverlapConfig::megatron(),
            _ => OverlapConfig::full(),
        }
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Limits on the configuration enumeration.
#[derive(Debug, Clone)]
pub struct SearchOptions {
    /// Largest micro-batch size tried.
    pub max_microbatch: u32,
    /// Largest stages-per-device (loop count) tried.
    pub max_loop: u32,
    /// Skip configurations whose op graph would exceed this many compute
    /// actions (guards the search's own runtime).
    pub max_actions: u64,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            max_microbatch: 16,
            max_loop: 32,
            max_actions: 400_000,
        }
    }
}

/// The winning configuration for one (method, batch) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResult {
    /// The method searched.
    pub method: Method,
    /// The winning schedule kind.
    pub kind: ScheduleKind,
    /// The winning configuration.
    pub cfg: ParallelConfig,
    /// The overlap setting used.
    pub overlap: OverlapConfig,
    /// Its measurement.
    pub measurement: Measurement,
}

fn divisors(n: u32) -> Vec<u32> {
    (1..=n).filter(|d| n.is_multiple_of(*d)).collect()
}

/// Enumerates, simulates and ranks every valid configuration of `method`
/// at `global_batch`; returns the fastest that fits device memory, or
/// `None` if nothing fits (e.g. batch smaller than the data-parallel
/// width of every feasible grid).
pub fn best_config(
    model: &TransformerConfig,
    cluster: &ClusterSpec,
    method: Method,
    global_batch: u64,
    kernel: &KernelModel,
    opts: &SearchOptions,
) -> Option<SearchResult> {
    let num_gpus = cluster.num_gpus();
    let spn = cluster.node.gpus_per_node;
    let overlap = method.overlap();
    let mut best: Option<SearchResult> = None;

    for n_tp in divisors(spn) {
        let rest = num_gpus / n_tp;
        if !num_gpus.is_multiple_of(n_tp) {
            continue;
        }
        let pp_options: Vec<u32> = match method {
            Method::NoPipeline => vec![1],
            _ => divisors(rest)
                .into_iter()
                .filter(|&pp| pp >= 2 && pp <= model.num_layers)
                .collect(),
        };
        for n_pp in pp_options {
            let n_dp = rest / n_pp;
            if !global_batch.is_multiple_of(n_dp as u64) {
                continue;
            }
            let per_replica = (global_batch / n_dp as u64) as u32;
            for s_mb in divisors(per_replica.min(opts.max_microbatch)) {
                if !per_replica.is_multiple_of(s_mb) {
                    continue;
                }
                let n_mb = per_replica / s_mb;
                let loops: Vec<u32> = match method {
                    Method::BreadthFirst | Method::DepthFirst => (0..)
                        .map(|i| 1u32 << i)
                        .take_while(|&l| l <= opts.max_loop)
                        .filter(|&l| {
                            let stages = n_pp * l;
                            stages <= model.num_layers && model.num_layers.is_multiple_of(stages)
                        })
                        .collect(),
                    _ => vec![1],
                };
                for n_loop in loops {
                    if method == Method::DepthFirst && (n_loop < 2 || !n_mb.is_multiple_of(n_pp)) {
                        continue;
                    }
                    let actions = 2 * n_mb as u64 * (n_pp * n_loop) as u64;
                    if actions > opts.max_actions {
                        continue;
                    }
                    for &kind in method.kinds() {
                        for &dp in method.dp_variants() {
                            let cfg = ParallelConfig::new(
                                Grid::new(n_dp, n_tp, n_pp),
                                Placement::looping(n_pp, n_loop),
                                BatchConfig::new(n_mb, s_mb),
                                dp,
                            );
                            let Ok(m) = simulate(model, cluster, &cfg, kind, overlap, kernel)
                            else {
                                continue;
                            };
                            if !m.fits(cluster.node.gpu.memory_bytes) {
                                continue;
                            }
                            let better = best
                                .as_ref()
                                .map(|b| m.tflops_per_gpu > b.measurement.tflops_per_gpu)
                                .unwrap_or(true);
                            if better {
                                best = Some(SearchResult {
                                    method,
                                    kind,
                                    cfg,
                                    overlap,
                                    measurement: m,
                                });
                            }
                        }
                    }
                }
            }
        }
    }
    best
}

/// Runs [`best_config`] over a set of batch sizes — one Figure 5 line.
pub fn sweep(
    model: &TransformerConfig,
    cluster: &ClusterSpec,
    method: Method,
    batches: &[u64],
    kernel: &KernelModel,
    opts: &SearchOptions,
) -> Vec<(u64, Option<SearchResult>)> {
    batches
        .iter()
        .map(|&b| (b, best_config(model, cluster, method, b, kernel, opts)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfpp_cluster::presets;
    use bfpp_model::presets as models;

    fn quick_opts() -> SearchOptions {
        SearchOptions {
            max_microbatch: 8,
            max_loop: 16,
            max_actions: 60_000,
        }
    }

    #[test]
    fn methods_have_labels_and_variants() {
        for m in Method::ALL {
            assert!(!m.label().is_empty());
            assert!(!m.dp_variants().is_empty());
        }
        assert_eq!(Method::DepthFirst.overlap(), OverlapConfig::megatron());
        assert_eq!(Method::BreadthFirst.overlap(), OverlapConfig::full());
        assert_eq!(Method::BreadthFirst.to_string(), "Breadth-first");
    }

    #[test]
    fn breadth_first_wins_at_small_batch_52b() {
        // The paper's headline (Figure 5a): near β_min, breadth-first
        // outperforms both the non-looped and depth-first baselines.
        let model = models::bert_52b();
        let cluster = presets::dgx1_v100(8);
        let k = KernelModel::v100();
        let opts = quick_opts();
        let b = 9;
        let bf = best_config(&model, &cluster, Method::BreadthFirst, b, &k, &opts)
            .expect("breadth-first must have a feasible config at batch 9");
        // Batch 9 is awkward for the baselines (9 = 3^2): give them their
        // best nearby batch (8) as the paper's Figure 5a does.
        let nl = best_config(&model, &cluster, Method::NonLooped, 8, &k, &opts)
            .expect("non-looped feasible at batch 8");
        let df = best_config(&model, &cluster, Method::DepthFirst, 8, &k, &opts)
            .expect("depth-first feasible at batch 8");
        assert!(
            bf.measurement.tflops_per_gpu > nl.measurement.tflops_per_gpu,
            "bf {} !> non-looped {}",
            bf.measurement.tflops_per_gpu,
            nl.measurement.tflops_per_gpu
        );
        assert!(
            bf.measurement.tflops_per_gpu > df.measurement.tflops_per_gpu,
            "bf {} !> depth-first {}",
            bf.measurement.tflops_per_gpu,
            df.measurement.tflops_per_gpu
        );
        // And the winning config is looped.
        assert!(bf.cfg.placement.is_looping());
    }

    #[test]
    fn no_pipeline_catches_up_at_large_batch() {
        // Figure 5a: the non-pipelined approach achieves high utilization
        // only at a high batch size per GPU.
        let model = models::bert_52b();
        let cluster = presets::dgx1_v100(8);
        let k = KernelModel::v100();
        let opts = quick_opts();
        let small = best_config(&model, &cluster, Method::NoPipeline, 8, &k, &opts)
            .expect("feasible")
            .measurement
            .tflops_per_gpu;
        let large = best_config(&model, &cluster, Method::NoPipeline, 512, &k, &opts)
            .expect("feasible")
            .measurement
            .tflops_per_gpu;
        assert!(
            large > 3.0 * small,
            "no-pipeline must be steep in batch size: {small} -> {large}"
        );
    }

    #[test]
    fn sweep_covers_all_batches() {
        let model = models::bert_6_6b();
        let cluster = presets::dgx1_v100(8);
        let k = KernelModel::v100();
        let opts = quick_opts();
        let rows = sweep(
            &model,
            &cluster,
            Method::BreadthFirst,
            &[16, 64],
            &k,
            &opts,
        );
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|(_, r)| r.is_some()));
        // Larger batch should not be slower for the same method.
        let t16 = rows[0].1.as_ref().unwrap().measurement.tflops_per_gpu;
        let t64 = rows[1].1.as_ref().unwrap().measurement.tflops_per_gpu;
        assert!(t64 >= t16 * 0.95, "bf 16 -> 64 should not regress: {t16} {t64}");
    }

    #[test]
    fn infeasible_batch_returns_none() {
        // Batch 1 on 64 GPUs with pipeline methods: N_DP must be 1 and the
        // single micro-batch starves everything — but some config still
        // exists; instead test a batch that divides nothing.
        let model = models::bert_52b();
        let cluster = presets::dgx1_v100(8);
        let k = KernelModel::v100();
        let opts = quick_opts();
        // Batch 7 with no-pipeline: n_dp = 64 required... 7 % 64 != 0 for
        // every tp/pp split except n_dp = 7 or 1 which don't divide 64.
        let r = best_config(&model, &cluster, Method::NoPipeline, 7, &k, &opts);
        assert!(r.is_none());
    }

    #[test]
    fn divisors_helper() {
        assert_eq!(divisors(8), vec![1, 2, 4, 8]);
        assert_eq!(divisors(1), vec![1]);
        assert_eq!(divisors(12), vec![1, 2, 3, 4, 6, 12]);
    }
}
