//! Topology classes: one CSR per shape class, SoA duration batches.
//!
//! Two enumerated candidates that share a schedule and the same set of
//! structural lowering decisions produce op graphs that are *identical
//! except for durations*: the same resources in the same creation order,
//! the same ops in the same insertion order on the same streams, the
//! same dependency edges. `ClassKey` names that equivalence class —
//! every input [`crate::lower::lower_with_schedule_perturbed`] uses to
//! decide *structure* (never timing):
//!
//! * the schedule, i.e. `(kind, placement, num_microbatches)`;
//! * which communication classes overlap (`OverlapConfig::dp`/`pp`
//!   decide whether DP/PP streams exist or alias the compute stream);
//! * the sharding variant and whether data parallelism is active
//!   (`n_dp > 1`), which decide gather/reduce emission;
//! * whether the stage-boundary transfer rounds to zero (the only
//!   duration value that gates op *emission*).
//!
//! Everything else — model, cluster, kernel, tensor width, micro-batch
//! size, perturbation, **and heterogeneity** — only changes durations.
//! A heterogeneous fleet (or a non-uniform layer split) gives every
//! device its own kernel and link times, but the lowered *structure* is
//! untouched: send emission is gated class-wide (ops exist unless every
//! stage-pair transfer rounds to zero — `Durations::emits_sends`), so
//! a mixed-fleet member and a homogeneous member with the same key still
//! share one topology. The template carries the per-op pair index so a
//! member's row can be filled from per-device duration vectors just as
//! cheaply as from the scalar table. So the search lowers
//! **one representative per class**, records the solver's replay trace
//! once ([`bfpp_sim::SolveScratch`]), and evaluates every other member
//! from a structure-of-arrays duration batch: a `BatchTemplate` maps
//! each op index to its duration *kind* (fwd/bwd/p2p/gather/reduce) and
//! its perturbation slot, so filling a member's row is two table lookups
//! per op, and re-timing it is the solver's allocation-free trace
//! replay. Both halves are bit-identical to the per-candidate path
//! (`fill_row` reproduces lowering's perturbed durations exactly — same
//! per-op salt, same class/device factors — and trace replay is
//! bit-identical to a full solve), which is what lets the batched search
//! return exactly the same winners and counters.
//!
//! A `ClassBase` is deliberately *graph-free*: it keeps only the
//! prebuilt workspace, the template, and the few per-class scalars the
//! measurement layer needs. That makes it independent of model, cluster
//! and kernel — a base built for a key is valid for **any** request that
//! produces that key, so the process-wide [`ClassCache`] can share bases
//! across methods, batch sizes, models and planner requests. Results
//! never depend on cache contents, only on the key — a hit merely skips
//! the lower + CSR-build + discovery-solve work.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use bfpp_cluster::ClusterSpec;
use bfpp_core::{Direction, ScheduleKind};
use bfpp_model::TransformerConfig;
use bfpp_parallel::{DataParallelism, ParallelConfig, Placement};
use bfpp_sim::{OpClass, Perturbation, ResourceId, SimDuration, SolveScratch, SolveStats, Solver};

use crate::candidates::Candidate;
use crate::lower::{Durations, LoweredGraph, OpTag};
use crate::measure::{measure_from_parts, Measurement};
use crate::overlap::OverlapConfig;

/// The structural identity of a lowered graph: candidates with equal
/// keys lower to byte-identical topologies (resources, ops, edges,
/// queue orders) and differ only in op durations. See the module docs
/// for why exactly these fields and no others.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct ClassKey {
    kind: ScheduleKind,
    placement: Placement,
    num_microbatches: u32,
    dp: DataParallelism,
    /// Whether data parallelism is active (`n_dp > 1`) — gates every
    /// gather/reduce emission.
    dp_active: bool,
    overlap_dp: bool,
    overlap_pp: bool,
    /// Whether *every* stage-boundary transfer duration is exactly zero
    /// — the one duration predicate that gates op emission. Lowering
    /// gates sends class-wide (any non-zero pair emits the full send
    /// set; zero-duration sends on fast pairs are harmless no-ops), so
    /// this stays a single bit under heterogeneous fabrics instead of a
    /// per-pair mask.
    p2p_zero: bool,
}

impl ClassKey {
    /// The topology class of `cand` under `overlap`, given its computed
    /// base durations (needed only for the zero-transfer gate).
    pub(crate) fn of(cand: &Candidate, overlap: OverlapConfig, d: &Durations) -> ClassKey {
        ClassKey {
            kind: cand.kind,
            placement: cand.placement,
            num_microbatches: cand.batch.num_microbatches,
            dp: cand.dp,
            dp_active: cand.grid.n_dp > 1,
            overlap_dp: overlap.dp,
            overlap_pp: overlap.pp,
            p2p_zero: !d.emits_sends(),
        }
    }

    /// The schedule kind of every member — the granularity of
    /// [`ClassCache::invalidate_kind`].
    pub(crate) fn schedule_kind(&self) -> ScheduleKind {
        self.kind
    }
}

/// Per-op duration recipe of a topology class, structure-of-arrays: for
/// op `i`, `kinds[i]` indexes a 5-entry per-candidate duration table
/// (fwd, bwd, p2p, dp-gather, dp-reduce) and `slots[i]` is the
/// perturbation slot `2 * resource + is_compute` — the same dense
/// convention as `LoweredGraph::op_perturb`, so a row fill is two
/// indexed loads per op with no branching on `Op` structs. For members
/// with per-device durations the same arrays still apply — the device
/// comes from `slots[i] >> 1` via `resource_device`, and `p2p_pair[i]`
/// names the stage-pair link a send op crosses (`dev` for forward
/// sends, `(dev + n_pp - 1) % n_pp` for backward ones, matching
/// lowering exactly).
#[derive(Debug)]
struct BatchTemplate {
    kinds: Vec<u8>,
    slots: Vec<u32>,
    p2p_pair: Vec<u32>,
}

const KIND_FWD: u8 = 0;
const KIND_BWD: u8 = 1;
const KIND_P2P: u8 = 2;
const KIND_GATHER: u8 = 3;
const KIND_REDUCE: u8 = 4;

/// One topology class's shared evaluation state: the prebuilt solver
/// workspace (CSR index + replay trace of the class topology), the SoA
/// duration template, and the per-class scalars measurement needs. Holds
/// **no graph** — after construction the representative's
/// [`LoweredGraph`] is dropped, which is what makes a base
/// model/cluster/kernel-independent and shareable process-wide.
#[derive(Debug)]
pub(crate) struct ClassBase {
    n_ops: usize,
    kind: ScheduleKind,
    peak_checkpoints: u32,
    /// Whether the class's DP reduce is an all-reduce (`DP_0`) rather
    /// than a reduce-scatter (`DP_PS`/`DP_FS`) — decides table entry 4.
    reduce_is_all_reduce: bool,
    compute_resources: Vec<ResourceId>,
    resource_device: Vec<u32>,
    template: BatchTemplate,
    /// The workspace never leaves this lock: replay mutates only its
    /// scratch timing buffers, so concurrent evaluators of the same
    /// class serialize briefly instead of rebuilding the CSR index.
    scratch: Mutex<SolveScratch>,
}

impl ClassBase {
    /// Builds the class base from a clean representative lowering: runs
    /// the one discovery solve that records the replay trace, extracts
    /// the SoA template, and drops everything else. Returns `None` if
    /// the topology deadlocks — in which case *every* member of the
    /// class would fail its per-candidate solve identically (deadlock is
    /// a property of the topology, not of durations).
    pub(crate) fn build(dp: DataParallelism, lowered: &LoweredGraph) -> Option<ClassBase> {
        let mut solver = Solver::new(&lowered.graph);
        solver.solve_makespan().ok()?;
        let scratch = solver.into_scratch();
        debug_assert!(scratch.has_trace(), "a successful solve records the trace");

        let n_ops = lowered.graph.num_ops();
        let n_pp = lowered.compute_resources.len() as u32;
        let mut kinds = Vec::with_capacity(n_ops);
        let mut slots = Vec::with_capacity(n_ops);
        let mut p2p_pair = Vec::with_capacity(n_ops);
        for id in lowered.graph.op_ids() {
            let op = lowered.graph.op(id);
            let dev = lowered.resource_device[op.resource().index()];
            let (kind, is_compute, pair) = match op.tag() {
                OpTag::Compute(a) => (
                    match a.dir {
                        Direction::Forward => KIND_FWD,
                        Direction::Backward => KIND_BWD,
                    },
                    1u32,
                    0,
                ),
                // A forward send crosses the (dev, dev+1) boundary; a
                // backward send re-crosses the boundary the activation
                // arrived over — the same pair indices lowering charges.
                OpTag::PpSend { dir, .. } => (
                    KIND_P2P,
                    0,
                    match dir {
                        Direction::Forward => dev,
                        Direction::Backward => (dev + n_pp - 1) % n_pp,
                    },
                ),
                OpTag::DpGather { .. } => (KIND_GATHER, 0, 0),
                OpTag::DpReduce { .. } => (KIND_REDUCE, 0, 0),
            };
            kinds.push(kind);
            slots.push(2 * op.resource().index() as u32 + is_compute);
            p2p_pair.push(pair);
        }

        Some(ClassBase {
            n_ops,
            kind: lowered.schedule.kind(),
            peak_checkpoints: lowered.peak_checkpoints,
            reduce_is_all_reduce: dp == DataParallelism::Unsharded,
            compute_resources: lowered.compute_resources.clone(),
            resource_device: lowered.resource_device.clone(),
            template: BatchTemplate {
                kinds,
                slots,
                p2p_pair,
            },
            scratch: Mutex::new(scratch),
        })
    }

    /// Ops in the class topology (also the stored size charged against
    /// cache budgets).
    pub(crate) fn num_ops(&self) -> usize {
        self.n_ops
    }

    /// Fills one member's duration row, bit-identical to what lowering
    /// that member under `perturbation` would produce: the same per-op
    /// salt (insertion index), the same class/device factor for the
    /// randomness-free fast path. `factors` is caller scratch reused
    /// across rows.
    pub(crate) fn fill_row(
        &self,
        d: &Durations,
        perturbation: &Perturbation,
        factors: &mut Vec<f64>,
        out: &mut [SimDuration],
    ) {
        assert_eq!(out.len(), self.n_ops, "row sized for this topology");
        let table = [
            d.fwd,
            d.bwd,
            d.p2p,
            d.dp_gather,
            if self.reduce_is_all_reduce {
                d.dp_reduce_ar
            } else {
                d.dp_reduce_rs
            },
        ];
        let kinds = &self.template.kinds;
        let slots = &self.template.slots;
        let pairs = &self.template.p2p_pair;
        let hetero = d.per_device.is_some();
        // A member with per-device durations reads its base time through
        // the same accessors lowering uses: the op's device (from its
        // perturbation slot) for kernels and collectives, its stage-pair
        // index for sends. Homogeneous members keep the 5-entry table.
        let base_of = |i: usize| -> SimDuration {
            let dev = self.resource_device[(slots[i] >> 1) as usize];
            match kinds[i] {
                KIND_FWD => d.fwd_on(dev),
                KIND_BWD => d.bwd_on(dev),
                KIND_P2P => d.p2p_pair(pairs[i]),
                KIND_GATHER => d.dp_gather_on(dev),
                _ => {
                    if self.reduce_is_all_reduce {
                        d.dp_reduce_ar_on(dev)
                    } else {
                        d.dp_reduce_rs_on(dev)
                    }
                }
            }
        };
        if !perturbation.has_randomness() {
            factors.clear();
            for &dev in &self.resource_device {
                factors.push(perturbation.class_factor(OpClass::Communication, dev));
                factors.push(perturbation.class_factor(OpClass::Compute, dev));
            }
            for (i, slot) in out.iter_mut().enumerate() {
                let base = if hetero {
                    base_of(i)
                } else {
                    table[kinds[i] as usize]
                };
                *slot = Perturbation::apply_factor(base, factors[slots[i] as usize]);
            }
            return;
        }
        for (i, out_slot) in out.iter_mut().enumerate() {
            let slot = slots[i];
            let class = if slot & 1 == 1 {
                OpClass::Compute
            } else {
                OpClass::Communication
            };
            let dev = self.resource_device[(slot >> 1) as usize];
            let base = if hetero {
                base_of(i)
            } else {
                table[kinds[i] as usize]
            };
            *out_slot = perturbation.perturb(base, class, dev, i as u64);
        }
    }

    /// Checks out the class workspace for a run of [`ClassBase::
    /// measure_row`] calls — lock once per member batch, not per row.
    pub(crate) fn lock_scratch(&self) -> MutexGuard<'_, SolveScratch> {
        match self.scratch.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Re-times the class trace under one member's duration row and
    /// derives the paper's metrics — bit-identical to lowering and fully
    /// solving that member. `stats` is caller scratch reused across rows.
    pub(crate) fn measure_row(
        &self,
        scratch: &mut SolveScratch,
        stats: &mut SolveStats,
        model: &TransformerConfig,
        cluster: &ClusterSpec,
        cfg: &ParallelConfig,
        row: &[SimDuration],
    ) -> Measurement {
        scratch.replay_stats_into(row, stats);
        let compute_busy = stats
            .utilization_over(self.compute_resources.iter().copied())
            .mean;
        measure_from_parts(
            model,
            cluster,
            cfg,
            self.kind,
            self.peak_checkpoints,
            stats.makespan,
            compute_busy,
        )
    }
}

struct ClassEntries {
    map: HashMap<ClassKey, Arc<ClassBase>>,
    /// Insertion order for FIFO eviction (deterministic, unlike
    /// hash-map iteration order).
    order: Vec<ClassKey>,
    ops_held: u64,
}

/// A bounded, concurrency-safe store of topology-class bases, keyed by
/// `ClassKey` and bounded by total stored ops (FIFO eviction). Because
/// a base is model/cluster/kernel-independent, one cache is sound for
/// the whole process ([`ClassCache::global`]): any correctly built base
/// for a key is interchangeable, so sharing changes speed, never
/// results.
pub struct ClassCache {
    entries: Mutex<ClassEntries>,
    max_ops: u64,
    /// Lifetime lookup traffic, for hit-rate telemetry. Diagnostic
    /// only: two requests racing on a cold key can both count a miss,
    /// so these are excluded from any bit-stability guarantee.
    hits: AtomicU64,
    misses: AtomicU64,
}

impl std::fmt::Debug for ClassCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClassCache")
            .field("classes", &self.len())
            .finish_non_exhaustive()
    }
}

impl Default for ClassCache {
    fn default() -> Self {
        // ~2M stored ops: hundreds of search-scale classes, bounded to a
        // few hundred MB of workspaces in the worst case.
        ClassCache::with_max_ops(2_000_000)
    }
}

impl ClassCache {
    /// A cache with the default op budget.
    pub fn new() -> Self {
        ClassCache::default()
    }

    /// A cache bounded to `max_ops` total stored topology ops.
    pub fn with_max_ops(max_ops: u64) -> Self {
        ClassCache {
            entries: Mutex::new(ClassEntries {
                map: HashMap::new(),
                order: Vec::new(),
                ops_held: 0,
            }),
            max_ops: max_ops.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The process-wide cache [`crate::SearchEnv`] defaults to.
    pub fn global() -> &'static Arc<ClassCache> {
        static GLOBAL: OnceLock<Arc<ClassCache>> = OnceLock::new();
        GLOBAL.get_or_init(|| Arc::new(ClassCache::new()))
    }

    pub(crate) fn lookup(&self, key: &ClassKey) -> Option<Arc<ClassBase>> {
        let found = self.lock().map.get(key).cloned();
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Lifetime lookup hits (diagnostic — see the field note on races).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime lookup misses.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    pub(crate) fn insert(&self, key: ClassKey, base: Arc<ClassBase>) {
        let ops = base.num_ops() as u64;
        let mut entries = self.lock();
        if entries.map.contains_key(&key) || ops > self.max_ops {
            return;
        }
        entries.map.insert(key, base);
        entries.order.push(key);
        entries.ops_held += ops;
        while entries.ops_held > self.max_ops && entries.order.len() > 1 {
            let evicted = entries.order.remove(0);
            if let Some(base) = entries.map.remove(&evicted) {
                entries.ops_held -= base.num_ops() as u64;
            }
        }
    }

    /// Drops every base whose schedule kind is `kind` — the keyed
    /// quarantine a supervising planner issues when a session using that
    /// kind dies mid-write. Returns how many bases were dropped.
    pub fn invalidate_kind(&self, kind: ScheduleKind) -> usize {
        let mut entries = self.lock();
        let before = entries.map.len();
        entries.map.retain(|k, _| k.schedule_kind() != kind);
        entries.order.retain(|k| k.schedule_kind() != kind);
        entries.ops_held = entries.map.values().map(|b| b.num_ops() as u64).sum();
        before - entries.map.len()
    }

    /// Drops every base.
    pub fn clear(&self) {
        let mut entries = self.lock();
        entries.map.clear();
        entries.order.clear();
        entries.ops_held = 0;
    }

    /// Number of class bases held.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Whether the cache holds no bases.
    pub fn is_empty(&self) -> bool {
        self.lock().map.is_empty()
    }

    fn lock(&self) -> MutexGuard<'_, ClassEntries> {
        match self.entries.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reusable, initially empty [`SolveStats`] for replay call sites.
pub(crate) fn empty_stats() -> SolveStats {
    SolveStats {
        makespan: SimDuration::ZERO,
        busy: Vec::new(),
        peak_memory: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::SplitStrategy;
    use crate::kernel::KernelModel;
    use crate::lower::{compute_durations, lower};
    use crate::measure::measure_lowered;
    use bfpp_cluster::presets;
    use bfpp_model::presets as models;
    use bfpp_parallel::{BatchConfig, Grid};

    fn candidate(n_dp: u32, n_tp: u32, s_mb: u32, n_mb: u32) -> Candidate {
        Candidate {
            grid: Grid::new(n_dp, n_tp, 8),
            placement: Placement::looping(8, 8),
            batch: BatchConfig::new(n_mb, s_mb),
            kind: ScheduleKind::BreadthFirst,
            dp: DataParallelism::FullySharded,
            split: SplitStrategy::Uniform,
        }
    }

    fn class_parts(cand: &Candidate) -> (ParallelConfig, Durations, ClassKey, LoweredGraph) {
        let model = models::bert_52b();
        let cluster = presets::dgx1_v100(8);
        let k = KernelModel::v100();
        let overlap = OverlapConfig::full();
        let cfg = cand.config();
        let d = compute_durations(&model, &cluster, &cfg, &k, overlap.comm_multiplier);
        let key = ClassKey::of(cand, overlap, &d);
        let lowered = lower(&model, &cluster, &cfg, cand.kind, overlap, &k).unwrap();
        (cfg, d, key, lowered)
    }

    #[test]
    fn same_shape_different_widths_share_a_class() {
        // 12 micro-batches on the same 8x8 placement: the tensor width
        // and replica count only move durations, never structure.
        let a = candidate(4, 2, 1, 12);
        let b = candidate(2, 4, 2, 12);
        let (_, _, ka, la) = class_parts(&a);
        let (_, _, kb, lb) = class_parts(&b);
        assert_eq!(ka, kb, "same schedule + gates = same class");
        assert_eq!(la.graph.num_ops(), lb.graph.num_ops());
        // And a different micro-batch count is a different topology.
        let c = candidate(4, 2, 2, 6);
        let (_, _, kc, _) = class_parts(&c);
        assert_ne!(ka, kc);
    }

    #[test]
    fn batched_member_measurement_is_bit_identical_to_lowering() {
        // Build the base from candidate `a`, then measure candidate `b`
        // (same class, different durations) through the batch path and
        // through a full lower + solve. Must agree bit-for-bit.
        let a = candidate(4, 2, 1, 12);
        let b = candidate(2, 4, 2, 12);
        let model = models::bert_52b();
        let cluster = presets::dgx1_v100(8);
        let (_, _, ka, la) = class_parts(&a);
        let (cfg_b, d_b, kb, lb) = class_parts(&b);
        assert_eq!(ka, kb);

        let base = ClassBase::build(a.dp, &la).expect("acyclic");
        let mut row = vec![SimDuration::ZERO; base.num_ops()];
        let mut factors = Vec::new();
        for p in [
            Perturbation::none(),
            Perturbation::reference_probe(),
            Perturbation::with_seed(7)
                .with_straggler(3, 1.4)
                .with_jitter(0.05),
        ] {
            base.fill_row(&d_b, &p, &mut factors, &mut row);
            // Row durations equal a perturbed-duration recompute over
            // b's own lowering (itself tested bit-identical to a
            // perturbed lowering).
            let mut expect = Vec::new();
            lb.perturbed_durations(&p, &mut expect);
            assert_eq!(row, expect, "{p:?}");

            let mut stats = SolveStats {
                makespan: SimDuration::ZERO,
                busy: Vec::new(),
                peak_memory: None,
            };
            let mut scratch = base.lock_scratch();
            let m = base.measure_row(&mut scratch, &mut stats, &model, &cluster, &cfg_b, &row);
            drop(scratch);
            let mut solver = Solver::new(&lb.graph);
            let full = solver.solve_stats_with_durations(&row).unwrap();
            assert_eq!(stats.makespan, full.makespan, "{p:?}");
            assert_eq!(stats.busy, full.busy, "{p:?}");
            if p.is_identity() {
                assert_eq!(m, measure_lowered(&model, &cluster, &cfg_b, &lb), "{p:?}");
            }
        }
    }

    #[test]
    fn cache_bounds_evicts_fifo_and_invalidates_by_kind() {
        let a = candidate(4, 2, 1, 12);
        let (_, _, key, lowered) = class_parts(&a);
        let base = Arc::new(ClassBase::build(a.dp, &lowered).expect("acyclic"));

        let cache = ClassCache::with_max_ops(base.num_ops() as u64);
        cache.insert(key, Arc::clone(&base));
        assert_eq!(cache.len(), 1);
        assert!(cache.lookup(&key).is_some());
        // Duplicate inserts are no-ops.
        cache.insert(key, Arc::clone(&base));
        assert_eq!(cache.len(), 1);

        // A second class overflows the budget: FIFO evicts the first.
        let c = candidate(4, 2, 2, 6);
        let (_, _, key2, lowered2) = class_parts(&c);
        let base2 = Arc::new(ClassBase::build(c.dp, &lowered2).expect("acyclic"));
        cache.insert(key2, base2);
        assert!(cache.lookup(&key).is_none(), "FIFO evicted");
        assert!(cache.lookup(&key2).is_some());

        assert_eq!(cache.invalidate_kind(ScheduleKind::BreadthFirst), 1);
        assert!(cache.is_empty());
        assert_eq!(cache.invalidate_kind(ScheduleKind::BreadthFirst), 0);

        // A base larger than the whole budget is refused outright.
        let tiny = ClassCache::with_max_ops(1);
        tiny.insert(key, base);
        assert!(tiny.is_empty());
        tiny.clear();
    }
}
