//! Simulated measurement of one configuration.

use std::cell::RefCell;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

use bfpp_cluster::ClusterSpec;
use bfpp_core::{Schedule, ScheduleError, ScheduleKind};
use bfpp_model::TransformerConfig;
use bfpp_parallel::{ConfigError, ParallelConfig};

use bfpp_sim::{Perturbation, SimDuration, SolveScratch, SolveStats, Solver, Timeline};

use crate::kernel::KernelModel;
use crate::lower::{lower_perturbed, lower_with_schedule_perturbed, LoweredGraph};
use crate::memory::memory_with_checkpoints;
use crate::overlap::OverlapConfig;

/// Fraction of device memory a configuration may use; the rest is a
/// fragmentation reserve (the paper's Appendix D.2 discusses
/// fragmentation at length; we keep 8% headroom). Shared between
/// [`Measurement::fits`] and the search's analytic memory pre-filter so
/// both apply the identical threshold.
pub(crate) const MEMORY_HEADROOM: f64 = 0.92;

/// What the paper measures for each configuration (§5.1): batch duration,
/// utilization, throughput and memory.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Wall-clock seconds per batch.
    pub batch_seconds: f64,
    /// Achieved throughput per GPU, Tflop/s. Hardware flops are credited
    /// (8 flop/parameter/token, checkpoint recomputation included), which
    /// is the accounting under which the paper's best V100 entries reach
    /// ~62 Tflop/s (Tables E).
    pub tflops_per_gpu: f64,
    /// GPU utilization: achieved / peak flop/s, in `[0, 1]`.
    pub utilization: f64,
    /// Mean busy fraction of the simulated compute streams — an upper
    /// bound view: it exceeds `utilization` because kernels run below
    /// peak (the kernel-efficiency model) even while the stream is busy.
    pub compute_busy: f64,
    /// Estimated peak memory of the worst device, bytes.
    pub memory_bytes: f64,
    /// The global batch size this was measured at.
    pub global_batch: u64,
    /// Batch size per GPU (β).
    pub batch_per_gpu: f64,
}

impl Measurement {
    /// Whether the estimated memory fits the device, with the crate's
    /// shared 8% fragmentation reserve (`MEMORY_HEADROOM`, also applied
    /// by the search's analytic memory pre-filter).
    pub fn fits(&self, memory_bytes: u64) -> bool {
        self.memory_bytes <= memory_bytes as f64 * MEMORY_HEADROOM
    }

    /// Memory in GiB, for reporting.
    pub fn memory_gib(&self) -> f64 {
        self.memory_bytes / (1u64 << 30) as f64
    }
}

/// Why a configuration could not be simulated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimulateError {
    /// The parallel configuration is invalid for the model/cluster.
    Config(ConfigError),
    /// The schedule could not be generated.
    Schedule(ScheduleError),
}

impl fmt::Display for SimulateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimulateError::Config(e) => write!(f, "invalid configuration: {e}"),
            SimulateError::Schedule(e) => write!(f, "cannot generate schedule: {e}"),
        }
    }
}

impl Error for SimulateError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimulateError::Config(e) => Some(e),
            SimulateError::Schedule(e) => Some(e),
        }
    }
}

/// Simulates one batch of one configuration and reports the paper's
/// metrics.
///
/// # Errors
///
/// Returns [`SimulateError`] for invalid configurations or ungenerable
/// schedules.
pub fn simulate(
    model: &TransformerConfig,
    cluster: &ClusterSpec,
    cfg: &ParallelConfig,
    kind: ScheduleKind,
    overlap: OverlapConfig,
    kernel: &KernelModel,
) -> Result<Measurement, SimulateError> {
    simulate_perturbed(
        model,
        cluster,
        cfg,
        kind,
        overlap,
        kernel,
        &Perturbation::none(),
    )
}

/// [`simulate`] under a deterministic [`Perturbation`] (stragglers, link
/// degradation, jitter, stalls). Throughput and utilization are still
/// credited against the *fault-free* ideal, so a straggler shows up as
/// lost utilization — the quantity the straggler-sensitivity experiment
/// sweeps. An identity perturbation reproduces [`simulate`] bit-for-bit.
///
/// # Errors
///
/// As [`simulate`].
pub fn simulate_perturbed(
    model: &TransformerConfig,
    cluster: &ClusterSpec,
    cfg: &ParallelConfig,
    kind: ScheduleKind,
    overlap: OverlapConfig,
    kernel: &KernelModel,
    perturbation: &Perturbation,
) -> Result<Measurement, SimulateError> {
    let lowered = lower_perturbed(model, cluster, cfg, kind, overlap, kernel, perturbation)?;
    Ok(measure_lowered(model, cluster, cfg, &lowered))
}

/// [`simulate`] with an already generated (possibly cached and shared)
/// schedule, as the configuration search uses it. The schedule's kind
/// replaces the `kind` argument of [`simulate`].
///
/// # Errors
///
/// Returns [`SimulateError`] for invalid configurations.
pub fn simulate_with_schedule(
    model: &TransformerConfig,
    cluster: &ClusterSpec,
    cfg: &ParallelConfig,
    schedule: Arc<Schedule>,
    overlap: OverlapConfig,
    kernel: &KernelModel,
) -> Result<Measurement, SimulateError> {
    simulate_with_schedule_perturbed(
        model,
        cluster,
        cfg,
        schedule,
        overlap,
        kernel,
        &Perturbation::none(),
    )
}

/// [`simulate_with_schedule`] under a deterministic [`Perturbation`]; see
/// [`simulate_perturbed`].
///
/// # Errors
///
/// As [`simulate_with_schedule`].
pub fn simulate_with_schedule_perturbed(
    model: &TransformerConfig,
    cluster: &ClusterSpec,
    cfg: &ParallelConfig,
    schedule: Arc<Schedule>,
    overlap: OverlapConfig,
    kernel: &KernelModel,
    perturbation: &Perturbation,
) -> Result<Measurement, SimulateError> {
    let lowered = lower_with_schedule_perturbed(
        model,
        cluster,
        cfg,
        schedule,
        overlap,
        kernel,
        perturbation,
    )?;
    Ok(measure_lowered(model, cluster, cfg, &lowered))
}

thread_local! {
    /// Per-thread solver workspace: the search evaluates thousands of
    /// candidates per worker thread, and reusing one scratch removes
    /// every per-solve allocation after the first.
    static SCRATCH: RefCell<SolveScratch> = RefCell::new(SolveScratch::new());
}

pub(crate) fn measure_lowered(
    model: &TransformerConfig,
    cluster: &ClusterSpec,
    cfg: &ParallelConfig,
    lowered: &LoweredGraph,
) -> Measurement {
    let timeline = SCRATCH
        .with(|scratch| lowered.graph.solve_with(&mut scratch.borrow_mut()))
        .expect("lowered graphs are acyclic by construction");
    measure_timeline(model, cluster, cfg, lowered, &timeline)
}

/// Derives the paper's metrics from an already solved timeline of
/// `lowered` — the companion to [`bfpp_sim::Solver::solve_with_durations`]
/// for perturbation sweeps that lower once and re-solve per point.
pub fn measure_timeline(
    model: &TransformerConfig,
    cluster: &ClusterSpec,
    cfg: &ParallelConfig,
    lowered: &LoweredGraph,
    timeline: &Timeline,
) -> Measurement {
    let compute_busy = timeline
        .utilization_over(lowered.compute_resources.iter().copied())
        .mean;
    measure_from_parts(
        model,
        cluster,
        cfg,
        lowered.schedule.kind(),
        lowered.peak_checkpoints,
        timeline.makespan(),
        compute_busy,
    )
}

/// Measures a configuration from its *clean* base lowering under
/// `perturbation`, re-solving durations only: the warm-start evaluation
/// path. Bit-identical to [`simulate_with_schedule_perturbed`] on the
/// same schedule — [`LoweredGraph::perturbed_durations`] reproduces the
/// perturbed lowering's durations exactly, and
/// [`bfpp_sim::Solver::solve_stats_with_durations`] + [`measure_stats`]
/// reproduce the measurement of a full solve (both equalities are
/// tested). `durations` is caller scratch, reused across candidates.
/// `prebuilt` optionally supplies a workspace whose CSR index was
/// already built for this exact lowering; the workspace (index intact)
/// is always returned for the caller to stash against the next re-plan.
pub(crate) fn measure_with_durations(
    model: &TransformerConfig,
    cluster: &ClusterSpec,
    cfg: &ParallelConfig,
    lowered: &LoweredGraph,
    perturbation: &Perturbation,
    durations: &mut Vec<SimDuration>,
    prebuilt: Option<SolveScratch>,
) -> (Option<Measurement>, SolveScratch) {
    lowered.perturbed_durations(perturbation, durations);
    let mut solver = match prebuilt {
        // Steady state: the record kept the built CSR index of this
        // lowering, so even the O(V + E) rebuild is skipped.
        Some(built) => Solver::with_prebuilt_scratch(&lowered.graph, built),
        None => Solver::new(&lowered.graph),
    };
    let solved = solver.solve_stats_with_durations(durations);
    let out = solved
        .ok()
        .map(|stats| measure_stats(model, cluster, cfg, lowered, &stats));
    (out, solver.into_scratch())
}

/// As [`measure_timeline`], from the aggregate [`SolveStats`] of a solve
/// ([`bfpp_sim::Solver::solve_stats_with_durations`]) — the cheapest
/// per-point path in a perturbation sweep, and bit-identical to
/// measuring a materialized timeline of the same solve.
pub fn measure_stats(
    model: &TransformerConfig,
    cluster: &ClusterSpec,
    cfg: &ParallelConfig,
    lowered: &LoweredGraph,
    stats: &SolveStats,
) -> Measurement {
    let compute_busy = stats
        .utilization_over(lowered.compute_resources.iter().copied())
        .mean;
    measure_from_parts(
        model,
        cluster,
        cfg,
        lowered.schedule.kind(),
        lowered.peak_checkpoints,
        stats.makespan,
        compute_busy,
    )
}

/// The metric derivation itself, from the handful of scalars a solve
/// produces — no [`LoweredGraph`] in sight, so the topology-class batch
/// path (`crate::batch`), which drops graphs after building its replay
/// workspace, shares the exact arithmetic of every other path.
pub(crate) fn measure_from_parts(
    model: &TransformerConfig,
    cluster: &ClusterSpec,
    cfg: &ParallelConfig,
    kind: ScheduleKind,
    peak_checkpoints: u32,
    makespan: SimDuration,
    compute_busy: f64,
) -> Measurement {
    let batch_seconds = makespan.as_secs_f64();
    let global_batch = cfg.global_batch_size();
    let num_gpus = cfg.grid.num_gpus() as f64;
    let flops_per_gpu = model.hardware_flops_per_batch(global_batch) / num_gpus;
    let tflops_per_gpu = flops_per_gpu / batch_seconds / 1e12;
    // Utilization is reported against the fleet's reference device speed
    // (identical to `node.gpu.peak_fp16_flops` on homogeneous clusters,
    // the fleet mean on heterogeneous ones).
    let utilization = flops_per_gpu / batch_seconds / cluster.reference_flops();
    let memory_bytes = memory_with_checkpoints(model, cfg, kind, peak_checkpoints);

    Measurement {
        batch_seconds,
        tflops_per_gpu,
        utilization,
        compute_busy,
        memory_bytes,
        global_batch,
        batch_per_gpu: cfg.batch_per_gpu(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfpp_cluster::presets;
    use bfpp_model::presets as models;
    use bfpp_parallel::{BatchConfig, DataParallelism, Grid, Placement};

    fn run(
        kind: ScheduleKind,
        grid: Grid,
        placement: Placement,
        batch: BatchConfig,
        dp: DataParallelism,
        overlap: OverlapConfig,
    ) -> Measurement {
        simulate(
            &models::bert_52b(),
            &presets::dgx1_v100(8),
            &ParallelConfig::new(grid, placement, batch, dp),
            kind,
            overlap,
            &KernelModel::v100(),
        )
        .unwrap()
    }

    #[test]
    fn utilization_is_sane() {
        let m = run(
            ScheduleKind::BreadthFirst,
            Grid::new(4, 2, 8),
            Placement::looping(8, 8),
            BatchConfig::new(12, 1),
            DataParallelism::FullySharded,
            OverlapConfig::full(),
        );
        assert!(m.utilization > 0.05 && m.utilization < 0.65, "{m:?}");
        assert!(m.compute_busy >= m.utilization * 0.9, "{m:?}");
        assert!((m.tflops_per_gpu / 125.0 - m.utilization).abs() < 1e-9);
        assert_eq!(m.global_batch, 48);
    }

    #[test]
    fn breadth_first_beats_non_looped_at_small_batch() {
        // The headline claim at low β: BF looped vs non-looped, batch 9,
        // PP=8, TP=8 (the paper's β_min + 1 configuration).
        let bf = run(
            ScheduleKind::BreadthFirst,
            Grid::new(1, 8, 8),
            Placement::looping(8, 8),
            BatchConfig::new(9, 1),
            DataParallelism::Unsharded,
            OverlapConfig::full(),
        );
        let nl = run(
            ScheduleKind::GPipe,
            Grid::new(1, 8, 8),
            Placement::linear(8),
            BatchConfig::new(9, 1),
            DataParallelism::Unsharded,
            OverlapConfig::full(),
        );
        assert!(
            bf.tflops_per_gpu > nl.tflops_per_gpu * 1.2,
            "bf {} vs non-looped {}",
            bf.tflops_per_gpu,
            nl.tflops_per_gpu
        );
    }

    #[test]
    fn more_loops_cut_the_bubble() {
        let mk = |n_loop| {
            run(
                ScheduleKind::BreadthFirst,
                Grid::new(1, 8, 8),
                Placement::looping(8, n_loop),
                BatchConfig::new(9, 1),
                DataParallelism::Unsharded,
                OverlapConfig::full(),
            )
        };
        let l1 = mk(1);
        let l4 = mk(4);
        let l8 = mk(8);
        assert!(l4.tflops_per_gpu > l1.tflops_per_gpu);
        assert!(l8.tflops_per_gpu > l1.tflops_per_gpu);
    }

    #[test]
    fn memory_fits_check_uses_headroom() {
        let m = Measurement {
            batch_seconds: 1.0,
            tflops_per_gpu: 1.0,
            utilization: 0.1,
            compute_busy: 0.1,
            memory_bytes: 31.0 * (1u64 << 30) as f64,
            global_batch: 8,
            batch_per_gpu: 0.125,
        };
        assert!(
            !m.fits(32 * (1 << 30)),
            "31 GiB does not fit with 8% reserve"
        );
        assert!(m.fits(64 * (1 << 30)));
        assert!((m.memory_gib() - 31.0).abs() < 1e-9);
    }

    #[test]
    fn errors_propagate() {
        let bad = ParallelConfig::new(
            Grid::new(1, 8, 8),
            Placement::linear(8),
            BatchConfig::new(7, 1),
            DataParallelism::Unsharded,
        );
        // Depth-first with N_mb not a multiple of N_PP.
        let err = simulate(
            &models::bert_52b(),
            &presets::dgx1_v100(8),
            &bad,
            ScheduleKind::DepthFirst,
            OverlapConfig::full(),
            &KernelModel::v100(),
        )
        .unwrap_err();
        assert!(matches!(err, SimulateError::Schedule(_)));
        assert!(err.source().is_some());
    }
}
