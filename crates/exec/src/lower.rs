//! Lowering a training configuration to a `bfpp-sim` operation graph.
//!
//! One pipeline "column" is simulated (data- and tensor-parallel peers
//! are symmetric); each pipeline device contributes three FIFO resources,
//! mirroring the parallel CUDA streams of the paper's Figure 4:
//!
//! * `gpu{d}.compute` — forward/backward kernels (tensor-parallel
//!   all-reduce time is folded in, since it is mostly non-overlapped —
//!   Appendix A.3.3 footnote 9);
//! * `gpu{d}.dp` — data-parallel collectives (gradient reduction, weight
//!   reconstruction);
//! * `gpu{d}.pp` — pipeline stage-boundary transfers.
//!
//! When a class of communication cannot overlap
//! ([`OverlapConfig`]), its operations are placed directly on the compute
//! stream instead, serializing with the kernels — which is exactly what a
//! blocking NCCL call does.

use std::sync::Arc;

use bfpp_cluster::{ClusterSpec, LinkSpec, NodeId};
use bfpp_collectives::cost;
use bfpp_core::{Action, Direction, Schedule, ScheduleKind, StageRun};
use bfpp_model::TransformerConfig;
use bfpp_parallel::{DataParallelism, LayerSplit, ParallelConfig, RankCoord, StageId};
use bfpp_sim::memprof::{BufferClass, EventEdge, MemEffect, MemorySpec};
use bfpp_sim::{OpClass, OpGraph, OpId, Perturbation, ResourceId, SimDuration};

use crate::kernel::KernelModel;
use crate::measure::SimulateError;
use crate::memory::device_model;
use crate::overlap::OverlapConfig;

/// Metadata attached to every simulated operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpTag {
    /// A forward or backward kernel of one (micro-batch, stage).
    Compute(Action),
    /// A pipeline stage-boundary transfer leaving `from_stage`.
    PpSend {
        /// Direction of the pass producing the transfer.
        dir: Direction,
        /// Micro-batch being moved.
        microbatch: u32,
        /// The stage whose output is being sent.
        from_stage: StageId,
    },
    /// A data-parallel weight reconstruction (all-gather) for a stage.
    DpGather {
        /// The stage whose weights are gathered.
        stage: StageId,
    },
    /// A data-parallel gradient reduction for a stage.
    DpReduce {
        /// The stage whose gradients are reduced.
        stage: StageId,
    },
}

impl OpTag {
    /// Single-character glyph for timeline rendering: `F`/`B` for
    /// kernels, `s` for pipeline sends, `g`/`r` for DP gather/reduce.
    pub fn glyph(&self) -> char {
        match self {
            OpTag::Compute(a) => a.dir.glyph(),
            OpTag::PpSend { .. } => 's',
            OpTag::DpGather { .. } => 'g',
            OpTag::DpReduce { .. } => 'r',
        }
    }

    /// Readable label for CSV export.
    pub fn label(&self) -> String {
        match self {
            OpTag::Compute(a) => a.label(),
            OpTag::PpSend {
                dir,
                microbatch,
                from_stage,
            } => format!("send-{}{}@s{}", dir.glyph(), microbatch, from_stage.0),
            OpTag::DpGather { stage } => format!("gather@s{}", stage.0),
            OpTag::DpReduce { stage } => format!("reduce@s{}", stage.0),
        }
    }
}

/// Per-op-kind workload sizes of one lowering, used to annotate exported
/// traces (`args` on the Chrome-trace events): how many FLOPs a kernel
/// performs and how many bytes each transfer moves. All ops of a kind
/// share these (the lowering is per-microbatch uniform).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TraceInfo {
    /// Forward kernel FLOPs per (micro-batch, stage), after TP slicing.
    pub fwd_flops: f64,
    /// Backward (+ recompute) kernel FLOPs per (micro-batch, stage).
    pub bwd_flops: f64,
    /// Pipeline stage-boundary transfer payload, bytes.
    pub p2p_bytes: f64,
    /// Data-parallel collective payload per stage shard, bytes.
    pub dp_bytes: f64,
}

/// The lowered operation graph plus the bookkeeping the measurement layer
/// needs.
#[derive(Debug)]
pub struct LoweredGraph {
    /// The operation graph, ready to solve.
    pub graph: OpGraph<OpTag>,
    /// Compute-stream resource per pipeline device.
    pub compute_resources: Vec<ResourceId>,
    /// Pipeline device index per resource (indexed by
    /// [`ResourceId::index`]); several resources (compute/dp/pp streams)
    /// map to the same device.
    pub resource_device: Vec<u32>,
    /// The schedule that was lowered (shared — search workloads lower the
    /// same schedule under many micro-batch sizes and sharding levels).
    pub schedule: Arc<Schedule>,
    /// Ideal compute seconds per device (all kernels, no waiting).
    pub ideal_compute_seconds: f64,
    /// Whether a non-identity perturbation was folded into the op
    /// durations at lowering time. An unperturbed lowering is the valid
    /// base for [`LoweredGraph::perturbed_durations`].
    pub perturbed: bool,
    /// The schedule's worst-device peak checkpoint count, cached at
    /// lowering time: it is duration-independent, and recomputing it
    /// (a full `exact_timing` pass) per measurement would dominate the
    /// duration-only re-measure path of perturbation sweeps.
    pub peak_checkpoints: u32,
    /// Workload sizes for trace annotation (see [`TraceInfo`]).
    pub trace_info: TraceInfo,
    /// Per-op memory alloc/free annotations plus each device's Eq. 10–14
    /// unit sizes: one checkpoint pinned at every forward kernel's end
    /// and released at the matching backward's end, and the working
    /// activation buffer alive from the device's first kernel to its
    /// last. Evaluate against a solve ([`bfpp_sim::MemorySpec::profile`]
    /// or [`bfpp_sim::Solver::solve_stats_with_memory`]) for the exact
    /// per-device memory timeline; the peak reconciles byte-exactly with
    /// [`crate::memory::estimate_memory`].
    pub mem_spec: MemorySpec,
    /// Per-op `(base duration, factor slot)` where the slot is
    /// `2 * resource + is_compute` — the dense inputs of
    /// [`LoweredGraph::perturbed_durations`]'s randomness-free fast path,
    /// cached so re-perturbing never walks `Op` structs.
    op_perturb: Vec<(SimDuration, u32)>,
}

impl LoweredGraph {
    /// Recomputes every op's duration under `perturbation`, bit-identical
    /// to what [`lower_with_schedule_perturbed`] would have produced —
    /// without re-lowering. Graph *structure* is perturbation-independent
    /// (transfer emission tests base durations), and each op's perturbed
    /// duration is a pure function of (base duration, op class, device,
    /// insertion index), all of which this lowering retains. Feed the
    /// result to [`bfpp_sim::Solver::solve_with_durations`] to sweep many
    /// perturbation points over one lowering.
    ///
    /// # Panics
    ///
    /// Panics if this graph was itself lowered under a non-identity
    /// perturbation (its durations are not a valid base).
    pub fn perturbed_durations(&self, perturbation: &Perturbation, out: &mut Vec<SimDuration>) {
        assert!(
            !self.perturbed,
            "perturbed_durations requires an unperturbed base lowering"
        );
        out.clear();
        out.reserve(self.graph.num_ops());
        if !perturbation.has_randomness() {
            // Randomness-free (the straggler-sweep case): one factor per
            // (resource, class) decides every op, so skip the per-op
            // perturb calls and read the dense `op_perturb` cache instead
            // of `Op` structs. `apply_factor` keeps this bit-identical.
            let mut factors: Vec<f64> = Vec::with_capacity(2 * self.resource_device.len());
            for &dev in &self.resource_device {
                factors.push(perturbation.class_factor(OpClass::Communication, dev));
                factors.push(perturbation.class_factor(OpClass::Compute, dev));
            }
            out.extend(
                self.op_perturb
                    .iter()
                    .map(|&(base, slot)| Perturbation::apply_factor(base, factors[slot as usize])),
            );
            return;
        }
        for id in self.graph.op_ids() {
            let op = self.graph.op(id);
            let class = match op.tag() {
                OpTag::Compute(_) => OpClass::Compute,
                _ => OpClass::Communication,
            };
            let dev = self.resource_device[op.resource().index()];
            out.push(perturbation.perturb(op.duration(), class, dev, id.index() as u64));
        }
    }
}

/// Per-operation durations of one configuration, as charged to the
/// simulated streams. `fwd`/`bwd` fold in the non-overlapped
/// tensor-parallel all-reduce time.
///
/// On a homogeneous cluster with a uniform layer split the scalar fields
/// are the whole story (`per_device` is `None`) and every float in them
/// is computed exactly as it always was. Heterogeneous fleets (or
/// non-uniform layer splits) additionally carry [`PerDeviceDurations`];
/// the scalars are then the max over devices and consumers must go
/// through the `*_on` / [`Durations::p2p_pair`] accessors.
pub(crate) struct Durations {
    pub(crate) fwd: SimDuration,
    pub(crate) bwd: SimDuration,
    pub(crate) p2p: SimDuration,
    pub(crate) dp_gather: SimDuration,
    pub(crate) dp_reduce_rs: SimDuration,
    pub(crate) dp_reduce_ar: SimDuration,
    pub(crate) per_device: Option<PerDeviceDurations>,
    pub(crate) trace_info: TraceInfo,
}

/// Per-pipeline-device durations for heterogeneous fleets. All vectors
/// have length `N_PP`. `p2p` is indexed by *pair*: `p2p[d]` is the
/// stage-boundary transfer between pipeline device `d` and
/// `(d + 1) % N_PP` (looping placements wrap their last device's
/// forward sends back to device 0).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct PerDeviceDurations {
    pub(crate) fwd: Vec<SimDuration>,
    pub(crate) bwd: Vec<SimDuration>,
    pub(crate) p2p: Vec<SimDuration>,
    pub(crate) dp_gather: Vec<SimDuration>,
    pub(crate) dp_reduce_rs: Vec<SimDuration>,
    pub(crate) dp_reduce_ar: Vec<SimDuration>,
}

impl Durations {
    pub(crate) fn fwd_on(&self, dev: u32) -> SimDuration {
        match &self.per_device {
            Some(p) => p.fwd[dev as usize],
            None => self.fwd,
        }
    }

    pub(crate) fn bwd_on(&self, dev: u32) -> SimDuration {
        match &self.per_device {
            Some(p) => p.bwd[dev as usize],
            None => self.bwd,
        }
    }

    /// Transfer duration of pipeline pair `pair` = (device `pair`,
    /// device `(pair + 1) % N_PP`).
    pub(crate) fn p2p_pair(&self, pair: u32) -> SimDuration {
        match &self.per_device {
            Some(p) => p.p2p[pair as usize],
            None => self.p2p,
        }
    }

    pub(crate) fn dp_gather_on(&self, dev: u32) -> SimDuration {
        match &self.per_device {
            Some(p) => p.dp_gather[dev as usize],
            None => self.dp_gather,
        }
    }

    pub(crate) fn dp_reduce_rs_on(&self, dev: u32) -> SimDuration {
        match &self.per_device {
            Some(p) => p.dp_reduce_rs[dev as usize],
            None => self.dp_reduce_rs,
        }
    }

    pub(crate) fn dp_reduce_ar_on(&self, dev: u32) -> SimDuration {
        match &self.per_device {
            Some(p) => p.dp_reduce_ar[dev as usize],
            None => self.dp_reduce_ar,
        }
    }

    /// Whether this lowering emits pipeline-send operations at all — a
    /// *class-wide* gate: on a heterogeneous fleet sends are emitted as
    /// soon as any pair's transfer is non-zero (a zero-duration send on
    /// a fast pair is harmless), so graph *structure* never depends on
    /// individual pair durations. Reduces to the historical
    /// `!p2p.is_zero()` on homogeneous clusters.
    pub(crate) fn emits_sends(&self) -> bool {
        match &self.per_device {
            Some(p) => p.p2p.iter().any(|d| !d.is_zero()),
            None => !self.p2p.is_zero(),
        }
    }
}

/// The slower of two links (worse tier, then lower bandwidth) — the
/// bottleneck rule for collectives on a heterogeneous fleet.
fn slower<'a>(a: &'a LinkSpec, b: &'a LinkSpec) -> &'a LinkSpec {
    if (b.tier, -b.bandwidth) > (a.tier, -a.bandwidth) {
        b
    } else {
        a
    }
}

/// Seconds for a data-parallel collective over the DP group, two-level
/// hierarchical when the group has several members per node and spans
/// nodes.
fn dp_collective_seconds(
    cluster: &ClusterSpec,
    n_dp: u32,
    n_tp: u32,
    payload_bytes: f64,
    all_reduce: bool,
) -> f64 {
    dp_collective_seconds_links(
        &cluster.node.intra_link,
        &cluster.node.inter_link,
        cluster.node.gpus_per_node,
        n_dp,
        n_tp,
        payload_bytes,
        all_reduce,
    )
}

/// [`dp_collective_seconds`] with explicit links, so heterogeneous
/// fleets can pass the bottleneck links of one specific DP group.
#[allow(clippy::too_many_arguments)]
fn dp_collective_seconds_links(
    intra: &LinkSpec,
    inter: &LinkSpec,
    spn: u32,
    n_dp: u32,
    n_tp: u32,
    payload_bytes: f64,
    all_reduce: bool,
) -> f64 {
    let per_node = (spn / n_tp).max(1).min(n_dp);
    let flat = |link| {
        if all_reduce {
            cost::all_reduce(link, n_dp, payload_bytes).seconds
        } else {
            cost::reduce_scatter(link, n_dp, payload_bytes).seconds
        }
    };
    if n_dp <= per_node {
        flat(intra)
    } else if n_dp.is_multiple_of(per_node) && per_node > 1 {
        let n_inter = n_dp / per_node;
        if all_reduce {
            cost::hierarchical_all_reduce(intra, inter, per_node, n_inter, payload_bytes).seconds
        } else {
            // Hierarchical reduce-scatter / all-gather: intra phase on the
            // full payload, inter phase on the per-node shard.
            cost::reduce_scatter(intra, per_node, payload_bytes).seconds
                + cost::reduce_scatter(inter, n_inter, payload_bytes / per_node as f64).seconds
        }
    } else {
        flat(inter)
    }
}

pub(crate) fn compute_durations(
    model: &TransformerConfig,
    cluster: &ClusterSpec,
    cfg: &ParallelConfig,
    kernel: &KernelModel,
    comm_multiplier: f64,
) -> Durations {
    if cluster.is_hetero() || !matches!(cfg.layer_split, LayerSplit::Uniform) {
        compute_durations_hetero(model, cluster, cfg, kernel, comm_multiplier)
    } else {
        compute_durations_homogeneous(model, cluster, cfg, kernel, comm_multiplier)
    }
}

fn compute_durations_homogeneous(
    model: &TransformerConfig,
    cluster: &ClusterSpec,
    cfg: &ParallelConfig,
    kernel: &KernelModel,
    comm_multiplier: f64,
) -> Durations {
    let grid = cfg.grid;
    let placement = cfg.placement;
    let s_mb = cfg.batch.microbatch_size;
    let tokens = s_mb as f64 * model.seq_length as f64;
    let layers_per_stage = (model.num_layers / placement.num_stages()) as f64;
    let gpu = &cluster.node.gpu;

    // Kernel time.
    let fwd_flops =
        tokens * layers_per_stage * model.fwd_flops_per_token_per_layer() / grid.n_tp as f64;
    let bwd_flops = tokens
        * layers_per_stage
        * (model.bwd_flops_per_token_per_layer() + model.recompute_flops_per_token_per_layer())
        / grid.n_tp as f64;
    let fwd_kernel = kernel.seconds(model, s_mb, grid.n_tp, fwd_flops, gpu.peak_fp16_flops);
    let bwd_kernel = kernel.seconds(model, s_mb, grid.n_tp, bwd_flops, gpu.peak_fp16_flops);

    // Non-overlapped tensor-parallel all-reduces (two per layer in the
    // forward pass, two more during the backward's recomputation —
    // Appendix A.3.3 footnote 9).
    let tp_time = if grid.n_tp > 1 {
        let payload = 2.0 * tokens * model.hidden_size as f64;
        2.0 * layers_per_stage
            * cost::all_reduce(&cluster.node.intra_link, grid.n_tp, payload).seconds
    } else {
        0.0
    };

    // Pipeline stage-boundary transfer: one hidden vector per token in
    // half precision, sliced by tensor parallelism.
    let p2p_payload = tokens * model.boundary_bytes_per_token() / grid.n_tp as f64;
    let p2p = if grid.n_pp > 1 {
        let payload = p2p_payload;
        let from = grid.global_rank(RankCoord {
            dp: 0,
            tp: 0,
            pp: 0,
        });
        let to = grid.global_rank(RankCoord {
            dp: 0,
            tp: 0,
            pp: 1,
        });
        cost::point_to_point(cluster.link_between(from, to), payload).seconds
    } else {
        0.0
    };

    // Data-parallel collectives on one stage's parameter shard.
    let stage_params = layers_per_stage * model.params_per_layer() as f64 / grid.n_tp as f64;
    let payload = 2.0 * stage_params; // fp16
    let (dp_gather, dp_reduce_rs, dp_reduce_ar) = if grid.n_dp > 1 {
        (
            dp_collective_seconds(cluster, grid.n_dp, grid.n_tp, payload, false),
            dp_collective_seconds(cluster, grid.n_dp, grid.n_tp, payload, false),
            dp_collective_seconds(cluster, grid.n_dp, grid.n_tp, payload, true),
        )
    } else {
        (0.0, 0.0, 0.0)
    };

    let m = comm_multiplier;
    Durations {
        fwd: SimDuration::from_secs_f64(fwd_kernel + tp_time),
        bwd: SimDuration::from_secs_f64(bwd_kernel + tp_time),
        p2p: SimDuration::from_secs_f64(p2p * m),
        dp_gather: SimDuration::from_secs_f64(dp_gather * m),
        dp_reduce_rs: SimDuration::from_secs_f64(dp_reduce_rs * m),
        dp_reduce_ar: SimDuration::from_secs_f64(dp_reduce_ar * m),
        per_device: None,
        trace_info: TraceInfo {
            fwd_flops,
            bwd_flops,
            p2p_bytes: if grid.n_pp > 1 { p2p_payload } else { 0.0 },
            dp_bytes: if grid.n_dp > 1 { payload } else { 0.0 },
        },
    }
}

/// [`compute_durations`] for heterogeneous fleets and/or non-uniform
/// layer splits: every duration is computed per pipeline device, using
/// that device's own GPU speed, its node's links, and its layer share.
/// As everywhere in the lowering, one pipeline "column" (DP rank 0, TP
/// rank 0) is simulated; a pipeline device's hardware is read at its
/// column rank, and its DP collectives use the bottleneck links of its
/// DP group.
fn compute_durations_hetero(
    model: &TransformerConfig,
    cluster: &ClusterSpec,
    cfg: &ParallelConfig,
    kernel: &KernelModel,
    comm_multiplier: f64,
) -> Durations {
    let grid = cfg.grid;
    let n_pp = grid.n_pp;
    let n_loop = cfg.placement.n_loop();
    let s_mb = cfg.batch.microbatch_size;
    let tokens = s_mb as f64 * model.seq_length as f64;
    let m = comm_multiplier;
    let rank_of = |pp: u32| grid.global_rank(RankCoord { dp: 0, tp: 0, pp });

    let mut per = PerDeviceDurations {
        fwd: Vec::with_capacity(n_pp as usize),
        bwd: Vec::with_capacity(n_pp as usize),
        p2p: Vec::with_capacity(n_pp as usize),
        dp_gather: Vec::with_capacity(n_pp as usize),
        dp_reduce_rs: Vec::with_capacity(n_pp as usize),
        dp_reduce_ar: Vec::with_capacity(n_pp as usize),
    };

    let p2p_payload = tokens * model.boundary_bytes_per_token() / grid.n_tp as f64;
    let mut trace_info = TraceInfo::default();

    for dev in 0..n_pp {
        let rank = rank_of(dev);
        let node = cluster.node_spec(cluster.node_of(rank));
        let gpu = &node.gpu;
        let layers_per_stage = cfg
            .layer_split
            .layers_on_device(model.num_layers, n_pp, dev) as f64
            / n_loop as f64;

        // Kernel time on this device's silicon.
        let fwd_flops =
            tokens * layers_per_stage * model.fwd_flops_per_token_per_layer() / grid.n_tp as f64;
        let bwd_flops = tokens
            * layers_per_stage
            * (model.bwd_flops_per_token_per_layer() + model.recompute_flops_per_token_per_layer())
            / grid.n_tp as f64;
        let fwd_kernel = kernel.seconds(model, s_mb, grid.n_tp, fwd_flops, gpu.peak_fp16_flops);
        let bwd_kernel = kernel.seconds(model, s_mb, grid.n_tp, bwd_flops, gpu.peak_fp16_flops);

        // Non-overlapped TP all-reduces on this node's intra link.
        let tp_time = if grid.n_tp > 1 {
            let payload = 2.0 * tokens * model.hidden_size as f64;
            2.0 * layers_per_stage * cost::all_reduce(&node.intra_link, grid.n_tp, payload).seconds
        } else {
            0.0
        };
        per.fwd
            .push(SimDuration::from_secs_f64(fwd_kernel + tp_time));
        per.bwd
            .push(SimDuration::from_secs_f64(bwd_kernel + tp_time));
        if dev == 0 {
            trace_info.fwd_flops = fwd_flops;
            trace_info.bwd_flops = bwd_flops;
        }

        // Stage-boundary transfer of pair (dev, dev+1 mod N_PP), over
        // whatever link actually connects the two column ranks (intra,
        // inter, or a fabric override).
        let p2p = if n_pp > 1 {
            let to = rank_of((dev + 1) % n_pp);
            cost::point_to_point(cluster.link_between(rank, to), p2p_payload).seconds
        } else {
            0.0
        };
        per.p2p.push(SimDuration::from_secs_f64(p2p * m));

        // DP collectives for this device's DP group, over the group's
        // bottleneck links.
        let stage_params = layers_per_stage * model.params_per_layer() as f64 / grid.n_tp as f64;
        let payload = 2.0 * stage_params; // fp16
        let (dp_gather, dp_reduce_rs, dp_reduce_ar) = if grid.n_dp > 1 {
            let mut nodes: Vec<NodeId> = (0..grid.n_dp)
                .map(|dp| cluster.node_of(grid.global_rank(RankCoord { dp, tp: 0, pp: dev })))
                .collect();
            nodes.sort_unstable();
            nodes.dedup();
            let mut intra = &cluster.node_spec(nodes[0]).intra_link;
            for n in &nodes[1..] {
                intra = slower(intra, &cluster.node_spec(*n).intra_link);
            }
            let mut inter = intra;
            let mut spanning = false;
            for (i, &a) in nodes.iter().enumerate() {
                for &b in &nodes[i + 1..] {
                    let link = cluster.inter_link_between(a, b);
                    inter = if spanning { slower(inter, link) } else { link };
                    spanning = true;
                }
            }
            let spn = node.gpus_per_node;
            let coll = |all_reduce| {
                dp_collective_seconds_links(
                    intra, inter, spn, grid.n_dp, grid.n_tp, payload, all_reduce,
                )
            };
            (coll(false), coll(false), coll(true))
        } else {
            (0.0, 0.0, 0.0)
        };
        per.dp_gather
            .push(SimDuration::from_secs_f64(dp_gather * m));
        per.dp_reduce_rs
            .push(SimDuration::from_secs_f64(dp_reduce_rs * m));
        per.dp_reduce_ar
            .push(SimDuration::from_secs_f64(dp_reduce_ar * m));
        if dev == 0 {
            trace_info.p2p_bytes = if n_pp > 1 { p2p_payload } else { 0.0 };
            trace_info.dp_bytes = if grid.n_dp > 1 { payload } else { 0.0 };
        }
    }

    let max = |v: &[SimDuration]| v.iter().copied().max().unwrap_or(SimDuration::ZERO);
    Durations {
        fwd: max(&per.fwd),
        bwd: max(&per.bwd),
        p2p: max(&per.p2p),
        dp_gather: max(&per.dp_gather),
        dp_reduce_rs: max(&per.dp_reduce_rs),
        dp_reduce_ar: max(&per.dp_reduce_ar),
        per_device: Some(per),
        trace_info,
    }
}

/// Lowers one configuration to an operation graph.
///
/// # Errors
///
/// Returns [`SimulateError`] when the configuration is invalid for the
/// model/cluster or the schedule cannot be generated.
pub fn lower(
    model: &TransformerConfig,
    cluster: &ClusterSpec,
    cfg: &ParallelConfig,
    kind: ScheduleKind,
    overlap: OverlapConfig,
    kernel: &KernelModel,
) -> Result<LoweredGraph, SimulateError> {
    lower_perturbed(
        model,
        cluster,
        cfg,
        kind,
        overlap,
        kernel,
        &Perturbation::none(),
    )
}

/// [`lower`] under a deterministic [`Perturbation`]: every op duration is
/// scaled through [`Perturbation::perturb`] with the op's insertion index
/// as salt, so the same perturbation yields a bit-identical graph
/// regardless of caller threading, and an identity perturbation yields
/// exactly the unperturbed graph. Compute kernels take the per-device
/// straggler multiplier; pipeline/data-parallel transfers take the link
/// degradation.
///
/// # Errors
///
/// As [`lower`].
pub fn lower_perturbed(
    model: &TransformerConfig,
    cluster: &ClusterSpec,
    cfg: &ParallelConfig,
    kind: ScheduleKind,
    overlap: OverlapConfig,
    kernel: &KernelModel,
    perturbation: &Perturbation,
) -> Result<LoweredGraph, SimulateError> {
    cfg.validate(model, cluster)
        .map_err(SimulateError::Config)?;
    let schedule = Arc::new(
        Schedule::generate(kind, cfg.placement, cfg.batch.num_microbatches)
            .map_err(SimulateError::Schedule)?,
    );
    lower_with_schedule_perturbed(model, cluster, cfg, schedule, overlap, kernel, perturbation)
}

/// [`lower`] with an already generated (possibly cached and shared)
/// schedule. The schedule must have been generated for `cfg.placement`
/// and `cfg.batch.num_microbatches`.
///
/// # Errors
///
/// Returns [`SimulateError`] when the configuration is invalid for the
/// model/cluster.
pub fn lower_with_schedule(
    model: &TransformerConfig,
    cluster: &ClusterSpec,
    cfg: &ParallelConfig,
    schedule: Arc<Schedule>,
    overlap: OverlapConfig,
    kernel: &KernelModel,
) -> Result<LoweredGraph, SimulateError> {
    lower_with_schedule_perturbed(
        model,
        cluster,
        cfg,
        schedule,
        overlap,
        kernel,
        &Perturbation::none(),
    )
}

/// [`lower_with_schedule`] under a deterministic [`Perturbation`]; see
/// [`lower_perturbed`] for the fault model.
///
/// # Errors
///
/// As [`lower_with_schedule`].
pub fn lower_with_schedule_perturbed(
    model: &TransformerConfig,
    cluster: &ClusterSpec,
    cfg: &ParallelConfig,
    schedule: Arc<Schedule>,
    overlap: OverlapConfig,
    kernel: &KernelModel,
    perturbation: &Perturbation,
) -> Result<LoweredGraph, SimulateError> {
    cfg.validate(model, cluster)
        .map_err(SimulateError::Config)?;
    debug_assert_eq!(schedule.n_pp(), cfg.placement.n_pp());
    debug_assert_eq!(schedule.num_microbatches(), cfg.batch.num_microbatches);

    let d = compute_durations(model, cluster, cfg, kernel, overlap.comm_multiplier);
    let grid = cfg.grid;
    let n_pp = grid.n_pp;
    let n_mb = cfg.batch.num_microbatches;
    let n_stage = cfg.placement.num_stages();

    // Size the graph up front: per device, every action yields a kernel,
    // at most one send, and at most two DP collectives; cross-device
    // wiring adds at most two late edges per (microbatch, stage).
    let total_actions = 2 * n_mb as usize * n_stage as usize;
    let op_bound = 4 * total_actions;
    let mut graph: OpGraph<OpTag> =
        OpGraph::with_capacity(3 * n_pp as usize, op_bound, 3 * op_bound);
    let mut resource_device: Vec<u32> = Vec::with_capacity(3 * n_pp as usize);
    let compute_resources: Vec<ResourceId> = (0..n_pp)
        .map(|dev| {
            resource_device.push(dev);
            graph.add_resource(format!("gpu{dev}.compute"))
        })
        .collect();
    let dp_resources: Vec<ResourceId> = (0..n_pp)
        .map(|dev| {
            if overlap.dp {
                resource_device.push(dev);
                graph.add_resource(format!("gpu{dev}.dp"))
            } else {
                compute_resources[dev as usize]
            }
        })
        .collect();
    let pp_resources: Vec<ResourceId> = (0..n_pp)
        .map(|dev| {
            if overlap.pp {
                resource_device.push(dev);
                graph.add_resource(format!("gpu{dev}.pp"))
            } else {
                compute_resources[dev as usize]
            }
        })
        .collect();

    let idx = |mb: u32, stage: StageId| (mb * n_stage + stage.0) as usize;
    let mut compute_op: Vec<Option<OpId>> = vec![None; (2 * n_mb * n_stage) as usize];
    let cidx = |a: &Action| {
        (match a.dir {
            Direction::Forward => 0,
            Direction::Backward => 1,
        }) * (n_mb * n_stage) as usize
            + idx(a.microbatch, a.stage)
    };
    // Pipeline sends keyed like compute ops.
    let mut send_op: Vec<Option<OpId>> = vec![None; (2 * n_mb * n_stage) as usize];

    let use_fs = cfg.dp == DataParallelism::FullySharded && grid.n_dp > 1;
    let last_stage = StageId(n_stage - 1);

    // Memory annotations: one checkpoint per (micro-batch, stage) pinned
    // at its forward kernel's end and freed at its backward's end —
    // matching `Schedule::peak_checkpoints_per_device`, since a device's
    // FIFO compute stream replays its action order — plus one working
    // activation buffer per device spanning its first to last kernel.
    let mut mem_effects: Vec<MemEffect> = Vec::with_capacity(total_actions + 2 * n_pp as usize);

    // Perturb durations at insertion time, salted by the op's index in
    // the graph: a pure function of (perturbation, lowering order), so
    // perturbed graphs are bit-identical across runs and caller threading.
    let pert = |g: &OpGraph<OpTag>, base: SimDuration, class: OpClass, dev: u32| {
        perturbation.perturb(base, class, dev, g.num_ops() as u64)
    };

    for dev in 0..n_pp {
        let actions = schedule.device_actions(dev);
        let runs: Vec<StageRun> = schedule.stage_runs(dev);
        // Map action index -> run index starting there, and run ends.
        let mut run_start_at = vec![usize::MAX; actions.len()];
        let mut run_end_at = vec![usize::MAX; actions.len()];
        for (k, r) in runs.iter().enumerate() {
            run_start_at[r.start] = k;
            run_end_at[r.start + r.len - 1] = k;
        }
        // Last compute op of each run (filled during the walk).
        let mut run_last_op: Vec<Option<OpId>> = vec![None; runs.len()];

        // Per-stage last backward action index (for DP_0/DP_PS reduction).
        let mut last_bwd_at = vec![usize::MAX; n_stage as usize];
        for (i, a) in actions.iter().enumerate() {
            if a.dir == Direction::Backward {
                last_bwd_at[a.stage.0 as usize] = i;
            }
        }

        for (i, a) in actions.iter().enumerate() {
            // Fully sharded: gather this run's weights before its first
            // action; double-buffered, so the gather also waits for the
            // buffer freed by run k-2. Mid-run actions inherit the wait
            // through the compute stream's FIFO order.
            let mut extra_dep: Option<OpId> = None;
            if use_fs && run_start_at[i] != usize::MAX {
                let k = run_start_at[i];
                let mut deps: Vec<OpId> = Vec::new();
                if k >= 2 {
                    if let Some(prev) = run_last_op[k - 2] {
                        deps.push(prev);
                    }
                }
                let dur = pert(&graph, d.dp_gather_on(dev), OpClass::Communication, dev);
                let g = graph.add_op(
                    dp_resources[dev as usize],
                    dur,
                    &deps,
                    OpTag::DpGather { stage: a.stage },
                );
                extra_dep = Some(g);
            }

            let duration = match a.dir {
                Direction::Forward => d.fwd_on(dev),
                Direction::Backward => d.bwd_on(dev),
            };
            let duration = pert(&graph, duration, OpClass::Compute, dev);
            let deps: Vec<OpId> = extra_dep.into_iter().collect();
            let op = graph.add_op(
                compute_resources[dev as usize],
                duration,
                &deps,
                OpTag::Compute(*a),
            );
            compute_op[cidx(a)] = Some(op);
            if i == 0 {
                mem_effects.push(MemEffect {
                    op,
                    device: dev,
                    class: BufferClass::Activations,
                    delta: 1,
                    edge: EventEdge::Start,
                });
            }
            mem_effects.push(MemEffect {
                op,
                device: dev,
                class: BufferClass::Checkpoints,
                delta: match a.dir {
                    Direction::Forward => 1,
                    Direction::Backward => -1,
                },
                edge: EventEdge::End,
            });
            if i == actions.len() - 1 {
                mem_effects.push(MemEffect {
                    op,
                    device: dev,
                    class: BufferClass::Activations,
                    delta: -1,
                    edge: EventEdge::End,
                });
            }
            if run_end_at[i] != usize::MAX {
                run_last_op[run_end_at[i]] = Some(op);
            }

            // Outgoing pipeline transfer, issued right after the kernel in
            // this device's stream order.
            let sends_forward = a.dir == Direction::Forward && a.stage != last_stage;
            let sends_backward = a.dir == Direction::Backward && a.stage.0 > 0;
            if (sends_forward || sends_backward) && d.emits_sends() {
                // A forward send leaves device `dev` for `dev + 1`; a
                // backward send travels the pair below, `dev - 1 ↔ dev`
                // (both mod N_PP — looping placements wrap).
                let pair = match a.dir {
                    Direction::Forward => dev,
                    Direction::Backward => (dev + n_pp - 1) % n_pp,
                };
                let dur = pert(&graph, d.p2p_pair(pair), OpClass::Communication, dev);
                let send = graph.add_op(
                    pp_resources[dev as usize],
                    dur,
                    &[op],
                    OpTag::PpSend {
                        dir: a.dir,
                        microbatch: a.microbatch,
                        from_stage: a.stage,
                    },
                );
                send_op[cidx(a)] = Some(send);
            }

            // Fully sharded: flush (reduce-scatter) gradients at the end
            // of each backward run.
            if use_fs && run_end_at[i] != usize::MAX && a.dir == Direction::Backward {
                let dur = pert(&graph, d.dp_reduce_rs_on(dev), OpClass::Communication, dev);
                graph.add_op(
                    dp_resources[dev as usize],
                    dur,
                    &[op],
                    OpTag::DpReduce { stage: a.stage },
                );
            }

            // DP_0 / DP_PS: one reduction per stage after its last
            // backward. DP_PS chains the weight all-gather behind it.
            if !use_fs && grid.n_dp > 1 && last_bwd_at[a.stage.0 as usize] == i {
                match cfg.dp {
                    DataParallelism::Unsharded => {
                        let dur = pert(&graph, d.dp_reduce_ar_on(dev), OpClass::Communication, dev);
                        graph.add_op(
                            dp_resources[dev as usize],
                            dur,
                            &[op],
                            OpTag::DpReduce { stage: a.stage },
                        );
                    }
                    DataParallelism::PartiallySharded => {
                        let dur = pert(&graph, d.dp_reduce_rs_on(dev), OpClass::Communication, dev);
                        let rs = graph.add_op(
                            dp_resources[dev as usize],
                            dur,
                            &[op],
                            OpTag::DpReduce { stage: a.stage },
                        );
                        let dur = pert(&graph, d.dp_gather_on(dev), OpClass::Communication, dev);
                        graph.add_op(
                            dp_resources[dev as usize],
                            dur,
                            &[rs],
                            OpTag::DpGather { stage: a.stage },
                        );
                    }
                    DataParallelism::FullySharded => unreachable!("use_fs covers this"),
                }
            }
        }
    }

    // Wire cross-device pipeline dependencies.
    for mb in 0..n_mb {
        for s in 0..n_stage {
            let stage = StageId(s);
            // Forward: fwd(mb, s+1) waits for the transfer out of s (or
            // directly for fwd(mb, s) when transfers are free / same dev).
            if s + 1 < n_stage {
                let consumer = compute_op[cidx(&Action::fwd(mb, StageId(s + 1)))]
                    .expect("all compute ops created");
                let producer_fwd = Action::fwd(mb, stage);
                match send_op[cidx(&producer_fwd)] {
                    Some(send) => graph.add_dep(consumer, send),
                    None => {
                        let p = compute_op[cidx(&producer_fwd)].expect("created");
                        graph.add_dep(consumer, p);
                    }
                }
            }
            // Backward: bwd(mb, s-1) waits for the transfer out of s.
            if s > 0 {
                let consumer = compute_op[cidx(&Action::bwd(mb, StageId(s - 1)))]
                    .expect("all compute ops created");
                let producer_bwd = Action::bwd(mb, stage);
                match send_op[cidx(&producer_bwd)] {
                    Some(send) => graph.add_dep(consumer, send),
                    None => {
                        let p = compute_op[cidx(&producer_bwd)].expect("created");
                        graph.add_dep(consumer, p);
                    }
                }
            }
        }
    }

    let per_device_kernels = n_mb as u64 * cfg.placement.n_loop() as u64;
    let ideal_compute_seconds = (0..n_pp)
        .map(|dev| per_device_kernels as f64 * (d.fwd_on(dev) + d.bwd_on(dev)).as_secs_f64())
        .fold(0.0, f64::max);

    let op_perturb = graph
        .op_ids()
        .map(|id| {
            let op = graph.op(id);
            let is_compute = matches!(op.tag(), OpTag::Compute(_)) as u32;
            (op.duration(), 2 * op.resource().index() as u32 + is_compute)
        })
        .collect();

    let mem_spec = MemorySpec {
        devices: (0..n_pp)
            .map(|dev| device_model(model, cfg, schedule.kind(), dev))
            .collect(),
        effects: mem_effects,
    };

    Ok(LoweredGraph {
        graph,
        compute_resources,
        resource_device,
        peak_checkpoints: schedule.peak_checkpoints(),
        schedule,
        ideal_compute_seconds,
        perturbed: !perturbation.is_identity(),
        trace_info: d.trace_info,
        op_perturb,
        mem_spec,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfpp_cluster::presets;
    use bfpp_model::presets as models;
    use bfpp_parallel::{BatchConfig, Grid, ParallelConfig, Placement};

    fn simple_cfg() -> ParallelConfig {
        ParallelConfig::new(
            Grid::new(4, 2, 8),
            Placement::looping(8, 8),
            BatchConfig::new(12, 1),
            DataParallelism::FullySharded,
        )
    }

    #[test]
    fn lowering_produces_a_solvable_graph() {
        let g = lower(
            &models::bert_52b(),
            &presets::dgx1_v100(8),
            &simple_cfg(),
            ScheduleKind::BreadthFirst,
            OverlapConfig::full(),
            &KernelModel::v100(),
        )
        .unwrap();
        let t = g.graph.solve().expect("lowered graphs are acyclic");
        assert!(t.makespan().as_secs_f64() > 0.0);
        // All compute, send, gather and reduce ops exist:
        // compute = 2 * 12 * 64 stages; sends = transfers between stages.
        assert!(g.graph.num_ops() > 2 * 12 * 64);
    }

    #[test]
    fn overlap_reduces_batch_time() {
        let model = models::bert_52b();
        let cluster = presets::dgx1_v100(8);
        let cfg = simple_cfg();
        let k = KernelModel::v100();
        let solve = |ov: OverlapConfig| {
            lower(&model, &cluster, &cfg, ScheduleKind::BreadthFirst, ov, &k)
                .unwrap()
                .graph
                .solve()
                .unwrap()
                .makespan()
        };
        let with = solve(OverlapConfig::full());
        let without = solve(OverlapConfig::none());
        assert!(with < without, "overlap must help: {with} !< {without}");
    }

    #[test]
    fn no_pipeline_has_no_sends() {
        let model = models::bert_6_6b();
        let cluster = presets::dgx1_v100(8);
        let cfg = ParallelConfig::new(
            Grid::new(8, 8, 1),
            Placement::linear(1),
            BatchConfig::new(2, 4),
            DataParallelism::FullySharded,
        );
        let g = lower(
            &model,
            &cluster,
            &cfg,
            ScheduleKind::GPipe,
            OverlapConfig::full(),
            &KernelModel::v100(),
        )
        .unwrap();
        let sends = g
            .graph
            .op_ids()
            .filter(|id| matches!(g.graph.op(*id).tag(), OpTag::PpSend { .. }))
            .count();
        assert_eq!(sends, 0);
    }

    #[test]
    fn dp0_emits_one_reduce_per_stage() {
        let model = models::bert_52b();
        let cluster = presets::dgx1_v100(8);
        let cfg = ParallelConfig::new(
            Grid::new(4, 2, 8),
            Placement::looping(8, 4),
            BatchConfig::new(12, 1),
            DataParallelism::Unsharded,
        );
        let g = lower(
            &model,
            &cluster,
            &cfg,
            ScheduleKind::BreadthFirst,
            OverlapConfig::full(),
            &KernelModel::v100(),
        )
        .unwrap();
        let reduces = g
            .graph
            .op_ids()
            .filter(|id| matches!(g.graph.op(*id).tag(), OpTag::DpReduce { .. }))
            .count();
        assert_eq!(reduces, 32, "one per stage");
    }

    #[test]
    fn fs_with_breadth_first_gathers_twice_per_stage() {
        let model = models::bert_52b();
        let cluster = presets::dgx1_v100(8);
        let cfg = simple_cfg(); // FS, 64 stages, 8 per device
        let g = lower(
            &model,
            &cluster,
            &cfg,
            ScheduleKind::BreadthFirst,
            OverlapConfig::full(),
            &KernelModel::v100(),
        )
        .unwrap();
        let gathers = g
            .graph
            .op_ids()
            .filter(|id| matches!(g.graph.op(*id).tag(), OpTag::DpGather { .. }))
            .count();
        // 2 runs per local stage x 8 local stages x 8 devices.
        assert_eq!(gathers, 2 * 64);
        let reduces = g
            .graph
            .op_ids()
            .filter(|id| matches!(g.graph.op(*id).tag(), OpTag::DpReduce { .. }))
            .count();
        assert_eq!(reduces, 64, "one flush per stage");
    }

    #[test]
    fn identity_perturbation_lowers_bit_identically() {
        let model = models::bert_52b();
        let cluster = presets::dgx1_v100(8);
        let cfg = simple_cfg();
        let k = KernelModel::v100();
        let base = lower(
            &model,
            &cluster,
            &cfg,
            ScheduleKind::BreadthFirst,
            OverlapConfig::full(),
            &k,
        )
        .unwrap();
        // A seeded-but-zero-magnitude perturbation must not move a single
        // op by a nanosecond.
        let seeded = lower_perturbed(
            &model,
            &cluster,
            &cfg,
            ScheduleKind::BreadthFirst,
            OverlapConfig::full(),
            &k,
            &Perturbation::with_seed(1234),
        )
        .unwrap();
        let tb = base.graph.solve().unwrap();
        let ts = seeded.graph.solve().unwrap();
        assert_eq!(tb.makespan(), ts.makespan());
        for id in base.graph.op_ids() {
            assert_eq!(base.graph.op(id).duration(), seeded.graph.op(id).duration());
        }
    }

    #[test]
    fn straggler_slows_only_its_device_and_makespan_grows() {
        let model = models::bert_52b();
        let cluster = presets::dgx1_v100(8);
        let cfg = simple_cfg();
        let k = KernelModel::v100();
        let run = |p: &Perturbation| {
            lower_perturbed(
                &model,
                &cluster,
                &cfg,
                ScheduleKind::BreadthFirst,
                OverlapConfig::full(),
                &k,
                p,
            )
            .unwrap()
            .graph
            .solve()
            .unwrap()
            .makespan()
        };
        let clean = run(&Perturbation::none());
        let degraded = run(&Perturbation::with_seed(7).with_straggler(3, 1.5));
        assert!(
            degraded > clean,
            "a 1.5x straggler must stretch the pipeline: {degraded} !> {clean}"
        );
        // Deterministic: the same perturbation lowers to the same timeline.
        let again = run(&Perturbation::with_seed(7).with_straggler(3, 1.5));
        assert_eq!(degraded, again);
    }

    #[test]
    fn perturbed_durations_match_perturbed_lowering() {
        let model = models::bert_52b();
        let cluster = presets::dgx1_v100(8);
        let cfg = simple_cfg();
        let k = KernelModel::v100();
        let p = Perturbation::with_seed(0xB1F)
            .with_straggler(3, 1.4)
            .with_jitter(0.05)
            .with_link_degradation(1.3);
        let base = lower(
            &model,
            &cluster,
            &cfg,
            ScheduleKind::BreadthFirst,
            OverlapConfig::full(),
            &k,
        )
        .unwrap();
        let perturbed = lower_perturbed(
            &model,
            &cluster,
            &cfg,
            ScheduleKind::BreadthFirst,
            OverlapConfig::full(),
            &k,
            &p,
        )
        .unwrap();
        assert!(!base.perturbed);
        assert!(perturbed.perturbed);
        assert_eq!(base.graph.num_ops(), perturbed.graph.num_ops());
        // Recomputed durations are bit-identical to a fresh perturbed
        // lowering, op by op...
        let mut durs = Vec::new();
        base.perturbed_durations(&p, &mut durs);
        for id in base.graph.op_ids() {
            assert_eq!(durs[id.index()], perturbed.graph.op(id).duration());
        }
        // ...so the duration-only re-solve reproduces its timeline.
        let mut solver = bfpp_sim::Solver::new(&base.graph);
        let fast = solver.solve_with_durations(&durs).unwrap();
        let full = perturbed.graph.solve().unwrap();
        assert_eq!(fast.scheduled_ops(), full.scheduled_ops());
        assert_eq!(fast.makespan(), full.makespan());
    }

    #[test]
    fn resource_device_maps_every_stream_to_its_gpu() {
        let g = lower(
            &models::bert_52b(),
            &presets::dgx1_v100(8),
            &simple_cfg(),
            ScheduleKind::BreadthFirst,
            OverlapConfig::full(),
            &KernelModel::v100(),
        )
        .unwrap();
        assert_eq!(g.resource_device.len(), g.graph.num_resources());
        for (dev, r) in g.compute_resources.iter().enumerate() {
            assert_eq!(g.resource_device[r.index()], dev as u32);
        }
        for r in g.graph.resource_ids() {
            let name = g.graph.resource_name(r);
            let dev = g.resource_device[r.index()];
            assert!(
                name.starts_with(&format!("gpu{dev}.")),
                "resource {name:?} mapped to device {dev}"
            );
        }
    }

    #[test]
    fn tags_have_labels_and_glyphs() {
        assert_eq!(OpTag::Compute(Action::fwd(0, StageId(0))).glyph(), 'F');
        assert_eq!(OpTag::DpGather { stage: StageId(3) }.label(), "gather@s3");
        assert_eq!(
            OpTag::PpSend {
                dir: Direction::Backward,
                microbatch: 2,
                from_stage: StageId(1)
            }
            .glyph(),
            's'
        );
        assert!(OpTag::DpReduce { stage: StageId(0) }
            .label()
            .contains("reduce"));
    }
}
