//! Event-level memory and bandwidth profiles of lowered training runs.
//!
//! Glue between the generic memory-profiling layer of
//! [`bfpp_sim::memprof`] and the lowering: every [`LoweredGraph`] carries
//! a [`bfpp_sim::MemorySpec`] built from the Eq. 10–14 byte figures
//! (`crate::memory`), so a solved timeline yields an exact per-device
//! memory timeline — and its peak reconciles **byte-exactly** with the
//! analytic [`crate::memory::estimate_memory`], because both sides
//! evaluate the same per-class unit sizes through the same summation
//! ([`bfpp_sim::DeviceMemModel::total_bytes`]).
//!
//! * [`memory_profile`] evaluates the timeline; [`peak_attribution`]
//!   names the worst device's peak instant and its composition;
//! * [`link_spans`] extracts the busy intervals of each device's
//!   pipeline/data-parallel communication streams, for bandwidth
//!   counter tracks;
//! * [`chrome_trace_with_memory`] renders time tracks, stacked memory
//!   counters and per-link bandwidth counters in one Perfetto document.
//!
//! ```
//! use bfpp_cluster::presets::dgx1_v100;
//! use bfpp_core::ScheduleKind;
//! use bfpp_exec::{estimate_memory, lower, KernelModel, OverlapConfig};
//! use bfpp_model::presets::bert_52b;
//! use bfpp_parallel::{BatchConfig, DataParallelism, Grid, ParallelConfig, Placement};
//!
//! let cfg = ParallelConfig::new(
//!     Grid::new(4, 2, 8),
//!     Placement::looping(8, 8),
//!     BatchConfig::new(12, 1),
//!     DataParallelism::FullySharded,
//! );
//! let model = bert_52b();
//! let lowered = lower(
//!     &model,
//!     &dgx1_v100(8),
//!     &cfg,
//!     ScheduleKind::BreadthFirst,
//!     OverlapConfig::full(),
//!     &KernelModel::v100(),
//! )
//! .unwrap();
//! let timeline = lowered.graph.solve().unwrap();
//! let peak = bfpp_exec::memprof::peak_attribution(&lowered, &timeline);
//! // The event-level peak IS the analytic Eq. 10–14 estimate, byte for byte.
//! assert_eq!(
//!     peak.total_bytes,
//!     estimate_memory(&model, &cfg, &lowered.schedule)
//! );
//! ```

use bfpp_sim::memprof::{LinkSpan, MemoryProfile, PeakAttribution};
use bfpp_sim::Timeline;

use crate::lower::{LoweredGraph, OpTag};

/// Evaluates a solved lowering's memory annotations into the exact
/// per-device memory timeline (see [`bfpp_sim::MemorySpec::profile`]).
pub fn memory_profile(lowered: &LoweredGraph, timeline: &Timeline) -> MemoryProfile {
    lowered.mem_spec.profile(timeline)
}

/// The worst device's memory peak: the instant it occurs and its
/// composition by buffer class. Its `total_bytes` equals
/// [`crate::memory::estimate_memory`] for the same configuration and
/// schedule, byte for byte.
///
/// # Panics
///
/// Panics if the lowering has no devices (lowerings always have ≥ 1).
pub fn peak_attribution(lowered: &LoweredGraph, timeline: &Timeline) -> PeakAttribution {
    memory_profile(lowered, timeline).peak()
}

/// One communication stream's bandwidth-track input: the device it
/// belongs to, the counter name, and its busy intervals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkTrack {
    /// The pipeline device whose stream this is.
    pub device: u32,
    /// Counter name (`"pp MB/s"` or `"dp MB/s"`).
    pub counter: &'static str,
    /// Busy intervals, sorted by start time.
    pub spans: Vec<LinkSpan>,
}

/// Extracts each device's pipeline and data-parallel communication
/// intervals from a solved lowering, sorted by start time — the input to
/// [`bfpp_sim::memprof::add_bandwidth_track`]. Payload bytes come from
/// the lowering's [`crate::TraceInfo`]; devices without traffic of a
/// class contribute no track. When overlap is disabled the transfers run
/// on the compute stream, but they are still reported under their
/// communication class.
pub fn link_spans(lowered: &LoweredGraph, timeline: &Timeline) -> Vec<LinkTrack> {
    let info = &lowered.trace_info;
    let n_dev = lowered.compute_resources.len();
    // Per device: [pp spans, dp spans].
    let mut per_dev: Vec<[Vec<LinkSpan>; 2]> = vec![[Vec::new(), Vec::new()]; n_dev];
    for id in lowered.graph.op_ids() {
        let op = lowered.graph.op(id);
        let (slot, bytes) = match op.tag() {
            OpTag::Compute(_) => continue,
            OpTag::PpSend { .. } => (0, info.p2p_bytes),
            OpTag::DpGather { .. } | OpTag::DpReduce { .. } => (1, info.dp_bytes),
        };
        let dev = lowered.resource_device[op.resource().index()] as usize;
        per_dev[dev][slot].push(LinkSpan {
            start_ns: timeline.start_of(id).as_nanos(),
            end_ns: timeline.end_of(id).as_nanos(),
            bytes: bytes.round() as u64,
        });
    }
    let mut tracks = Vec::new();
    for (dev, [pp, dp]) in per_dev.into_iter().enumerate() {
        for (counter, mut spans) in [("pp MB/s", pp), ("dp MB/s", dp)] {
            if spans.is_empty() {
                continue;
            }
            // All spans of one class live on one FIFO stream, so id order
            // is already start order; sort anyway for a stated invariant.
            spans.sort_by_key(|s| (s.start_ns, s.end_ns));
            tracks.push(LinkTrack {
                device: dev as u32,
                counter,
                spans,
            });
        }
    }
    tracks
}

/// One-shot Chrome-trace export of a single solved lowering with its
/// memory and bandwidth counter tracks (see
/// [`crate::TraceBuilder::add_with_memory`]).
pub fn chrome_trace_with_memory(lowered: &LoweredGraph, timeline: &Timeline) -> String {
    let mut b = crate::observe::TraceBuilder::new();
    b.add_with_memory(None, lowered, timeline);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelModel;
    use crate::lower::lower;
    use crate::memory::estimate_memory;
    use crate::overlap::OverlapConfig;
    use bfpp_cluster::presets::dgx1_v100;
    use bfpp_core::ScheduleKind;
    use bfpp_model::presets::bert_52b;
    use bfpp_parallel::{BatchConfig, DataParallelism, Grid, ParallelConfig, Placement};
    use bfpp_sim::observe::validate_json;

    const ALL_KINDS: [ScheduleKind; 4] = [
        ScheduleKind::BreadthFirst,
        ScheduleKind::DepthFirst,
        ScheduleKind::OneFOneB,
        ScheduleKind::GPipe,
    ];

    fn cfg_for(kind: ScheduleKind, dp: DataParallelism) -> ParallelConfig {
        let placement = match kind {
            ScheduleKind::OneFOneB | ScheduleKind::GPipe => Placement::linear(4),
            _ => Placement::looping(4, 4),
        };
        ParallelConfig::new(Grid::new(2, 1, 4), placement, BatchConfig::new(8, 1), dp)
    }

    fn lowered_for(kind: ScheduleKind, dp: DataParallelism) -> LoweredGraph {
        lower(
            &bert_52b(),
            &dgx1_v100(1),
            &cfg_for(kind, dp),
            kind,
            OverlapConfig::full(),
            &KernelModel::v100(),
        )
        .unwrap()
    }

    #[test]
    fn event_peak_reconciles_byte_exactly_for_all_kinds_and_shardings() {
        let model = bert_52b();
        for kind in ALL_KINDS {
            for dp in [
                DataParallelism::Unsharded,
                DataParallelism::PartiallySharded,
                DataParallelism::FullySharded,
            ] {
                let lowered = lowered_for(kind, dp);
                let timeline = lowered.graph.solve().unwrap();
                let profile = memory_profile(&lowered, &timeline);
                profile.validate().unwrap();
                let peak = profile.peak();
                let analytic = estimate_memory(&model, &cfg_for(kind, dp), &lowered.schedule);
                assert_eq!(
                    peak.total_bytes, analytic,
                    "{kind:?}/{dp:?}: event peak must equal the Eq. 10-14 \
                     estimate byte-exactly"
                );
            }
        }
    }

    #[test]
    fn peak_checkpoint_count_matches_schedule() {
        for kind in ALL_KINDS {
            let lowered = lowered_for(kind, DataParallelism::FullySharded);
            let timeline = lowered.graph.solve().unwrap();
            let peaks = memory_profile(&lowered, &timeline).peaks();
            let per_device = lowered.schedule.peak_checkpoints_per_device();
            for p in &peaks.per_device {
                assert_eq!(
                    p.counts[bfpp_sim::BufferClass::Checkpoints.index()],
                    per_device[p.device as usize] as i64,
                    "{kind:?}: device {} peak checkpoint count",
                    p.device
                );
            }
        }
    }

    #[test]
    fn peak_memory_is_invariant_under_perturbation() {
        // Each device's compute stream is FIFO, so duration overrides
        // move the peak instant but never the per-device alloc/free
        // order — the peak bytes are timing-independent.
        let lowered = lowered_for(ScheduleKind::BreadthFirst, DataParallelism::FullySharded);
        let clean = lowered
            .mem_spec
            .profile(&lowered.graph.solve().unwrap())
            .peaks();
        let p = crate::Perturbation::with_seed(7)
            .with_straggler(2, 1.7)
            .with_jitter(0.1);
        let mut durs = Vec::new();
        lowered.perturbed_durations(&p, &mut durs);
        let mut solver = bfpp_sim::Solver::new(&lowered.graph);
        let stats = solver
            .solve_stats_with_durations_and_memory(&durs, &lowered.mem_spec)
            .unwrap();
        let perturbed = stats.peak_memory.unwrap();
        for (c, p) in clean.per_device.iter().zip(&perturbed.per_device) {
            assert_eq!(c.total_bytes, p.total_bytes);
            assert_eq!(c.counts, p.counts);
        }
    }

    #[test]
    fn solver_memory_stats_match_timeline_profile() {
        let lowered = lowered_for(ScheduleKind::DepthFirst, DataParallelism::Unsharded);
        let timeline = lowered.graph.solve().unwrap();
        let from_timeline = memory_profile(&lowered, &timeline).peaks();
        let stats = bfpp_sim::Solver::new(&lowered.graph)
            .solve_stats_with_memory(&lowered.mem_spec)
            .unwrap();
        assert_eq!(stats.peak_memory.unwrap(), from_timeline);
    }

    #[test]
    fn link_spans_cover_all_comm_ops() {
        let lowered = lowered_for(ScheduleKind::BreadthFirst, DataParallelism::FullySharded);
        let timeline = lowered.graph.solve().unwrap();
        let tracks = link_spans(&lowered, &timeline);
        let total_spans: usize = tracks.iter().map(|t| t.spans.len()).sum();
        let comm_ops = lowered
            .graph
            .op_ids()
            .filter(|&id| !matches!(lowered.graph.op(id).tag(), OpTag::Compute(_)))
            .count();
        assert_eq!(total_spans, comm_ops);
        for t in &tracks {
            assert!(t.spans.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
        }
        assert!(tracks.iter().any(|t| t.counter == "pp MB/s"));
        assert!(tracks.iter().any(|t| t.counter == "dp MB/s"));
    }

    #[test]
    fn chrome_trace_with_memory_is_valid_and_has_counter_tracks() {
        let lowered = lowered_for(ScheduleKind::BreadthFirst, DataParallelism::FullySharded);
        let timeline = lowered.graph.solve().unwrap();
        let json = chrome_trace_with_memory(&lowered, &timeline);
        validate_json(&json).unwrap();
        // All the time-track events are still there...
        assert_eq!(
            json.matches("\"ph\":\"X\"").count(),
            lowered.graph.num_ops()
        );
        // ...plus stacked memory counters and per-link bandwidth.
        assert!(json.contains("\"memory (bytes)\""));
        assert!(json.contains("\"checkpoints\":"));
        assert!(json.contains("\"pp MB/s\""));
        assert!(json.contains("\"dp MB/s\""));
    }

    #[test]
    fn trace_with_memory_is_deterministic() {
        let lowered = lowered_for(ScheduleKind::GPipe, DataParallelism::PartiallySharded);
        let run = || {
            let timeline = lowered.graph.solve().unwrap();
            chrome_trace_with_memory(&lowered, &timeline)
        };
        assert_eq!(run(), run());
    }
}
