//! Per-device peak memory estimate (paper Appendix A.2).

use bfpp_core::{Schedule, ScheduleKind};
use bfpp_model::{activation_memory_bytes, checkpoint_memory_per_layer_bytes, TransformerConfig};
use bfpp_parallel::{DataParallelism, LayerSplit, ParallelConfig};
use bfpp_sim::memprof::{BufferClass, DeviceMemModel};

/// Estimates the worst device's peak memory in bytes for one
/// configuration and schedule: training state (Eqs. 10–12), activation
/// checkpoints (Eq. 14, with the per-schedule live count), double-buffered
/// working activations (Eq. 13), and the embedding table's state on the
/// first pipeline device.
///
/// The breadth-first schedule takes the optimistic end of the state
/// bracket (gradients reduce immediately — §A.2.1); other schedules take
/// the conservative end.
pub fn estimate_memory(
    model: &TransformerConfig,
    cfg: &ParallelConfig,
    schedule: &Schedule,
) -> f64 {
    memory_with_checkpoints(model, cfg, schedule.kind(), schedule.peak_checkpoints())
}

/// [`estimate_memory`] without the schedule: everything but the live
/// checkpoint count is closed-form in the configuration, so given a
/// count this computes the estimate directly. The search's analytic
/// pre-filter calls it with a *lower bound* on the peak count to get a
/// lower bound on memory; [`estimate_memory`] calls it with the measured
/// peak.
pub(crate) fn memory_with_checkpoints(
    model: &TransformerConfig,
    cfg: &ParallelConfig,
    kind: ScheduleKind,
    peak_checkpoints: u32,
) -> f64 {
    let eval = |device: u32| {
        let m = device_model(model, cfg, kind, device);
        let mut counts = m.baseline_counts();
        counts[BufferClass::Checkpoints.index()] = peak_checkpoints as i64;
        counts[BufferClass::Activations.index()] = 1;
        m.total_bytes(&counts)
    };
    if matches!(cfg.layer_split, LayerSplit::PerDevice(_)) {
        // Under a non-uniform split any device can be the worst one (a
        // heavy share outweighs device 0's embedding table), so take the
        // max; the schedule-wide peak checkpoint count is applied on
        // every device, which is conservative for the light ones.
        return (0..cfg.grid.n_pp).map(eval).fold(0.0, f64::max);
    }
    // Device 0 is the worst device: it holds the embedding table *and*
    // attains the schedule-wide peak checkpoint count (the first stage
    // has the most micro-batches in flight under 1F1B/depth-first, and
    // all stages peak equally under GPipe/breadth-first).
    eval(0)
}

/// Builds the memory model of one pipeline device: the byte size of one
/// buffer of each [`BufferClass`] and the steady-state resident counts.
///
/// This is the **single source of the Eq. 10–14 byte figures** for both
/// consumers: [`memory_with_checkpoints`] evaluates it at the analytic
/// peak counts, and the event-level profile (`crate::memprof`) evaluates
/// it at the counts alive at each instant of the solved timeline —
/// through the same [`DeviceMemModel::total_bytes`] summation, which is
/// what makes the two peaks comparable with `==` on `f64`s.
///
/// The class split refines the paper's state bracket: half-precision
/// weights (`2 N/(N_PP·N_TP)` bytes, or the whole Eq. 12 working set
/// under `DP_FS`), the gradient buffer (the `high − low` width of the
/// Eq. 10/11 bracket; resident in steady state except under the
/// breadth-first schedule, which reduces gradients immediately), and the
/// optimizer slice (the remainder of the optimistic bracket). The
/// embedding table's state sits on device 0 only.
pub(crate) fn device_model(
    model: &TransformerConfig,
    cfg: &ParallelConfig,
    kind: ScheduleKind,
    device: u32,
) -> DeviceMemModel {
    let grid = cfg.grid;
    let s_mb = cfg.batch.microbatch_size;
    let layer_params = model.num_layers as u64 * model.params_per_layer();

    let range = cfg
        .dp
        .state_memory_bytes(layer_params, model.num_layers, grid.n_pp, grid.n_tp);
    // fp16 weight shards; under DP_FS the Eq. 12 working set (the two
    // active layers' gathered buffers) plays the weights role and the
    // bracket has no width left for separate gradient/optimizer terms.
    let weights = if cfg.dp == DataParallelism::FullySharded {
        range.low
    } else {
        2.0 * (layer_params as f64 / (grid.n_pp as f64 * grid.n_tp as f64))
    };

    // A non-uniform layer split scales this device's layer-proportional
    // state (the Eq. 10-12 bracket assumes the uniform `1/N_PP` share) by
    // its actual share; `scale` is exactly 1 under the uniform split.
    let (layers_per_stage, scale) = match &cfg.layer_split {
        LayerSplit::Uniform => ((model.num_layers / cfg.placement.num_stages()) as f64, 1.0),
        LayerSplit::PerDevice(_) => {
            let layers =
                cfg.layer_split
                    .layers_on_device(model.num_layers, grid.n_pp, device) as f64;
            (
                layers / cfg.placement.n_loop() as f64,
                layers * grid.n_pp as f64 / model.num_layers as f64,
            )
        }
    };

    let mut m = DeviceMemModel::default();
    m.units[BufferClass::Weights.index()] = weights * scale;
    m.units[BufferClass::Gradients.index()] = (range.high - range.low) * scale;
    m.units[BufferClass::Optimizer.index()] = (range.low - weights) * scale;
    // Embedding state on the first pipeline device (weights shared with
    // the LM head, counted once). Sharded variants spread it over the DP
    // group as well.
    m.units[BufferClass::Embedding.index()] = cfg.dp.embedding_state_bytes_per_param(grid.n_dp)
        * model.embedding_params() as f64
        / grid.n_tp as f64;
    // One live checkpoint = one stage visit's worth of layers (Eq. 14);
    // the live count is schedule-dependent.
    m.units[BufferClass::Checkpoints.index()] =
        layers_per_stage * checkpoint_memory_per_layer_bytes(model, s_mb, grid.n_tp);
    // Working activations for the layer being computed (double-buffered).
    m.units[BufferClass::Activations.index()] =
        2.0 * activation_memory_bytes(model, s_mb, grid.n_tp);

    m.baseline[BufferClass::Weights.index()] = 1;
    // Breadth-first reduces gradients immediately (§A.2.1): no gradient
    // buffer outlives its micro-batch, so the schedule sits at the
    // optimistic end of the state bracket.
    m.baseline[BufferClass::Gradients.index()] = (kind != ScheduleKind::BreadthFirst) as u32;
    m.baseline[BufferClass::Optimizer.index()] = 1;
    m.baseline[BufferClass::Embedding.index()] = (device == 0) as u32;
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfpp_model::presets;
    use bfpp_parallel::{BatchConfig, DataParallelism, Grid, Placement};

    const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

    fn schedule_for(cfg: &ParallelConfig, kind: ScheduleKind) -> Schedule {
        Schedule::generate(kind, cfg.placement, cfg.batch.num_microbatches).unwrap()
    }

    #[test]
    fn fs_uses_less_state_than_dp0() {
        let model = presets::bert_52b();
        let mk = |dp| {
            ParallelConfig::new(
                Grid::new(4, 2, 8),
                Placement::looping(8, 8),
                BatchConfig::new(8, 1),
                dp,
            )
        };
        let fs_cfg = mk(DataParallelism::FullySharded);
        let dp0_cfg = mk(DataParallelism::Unsharded);
        let s = schedule_for(&fs_cfg, ScheduleKind::BreadthFirst);
        let fs = estimate_memory(&model, &fs_cfg, &s);
        let dp0 = estimate_memory(&model, &dp0_cfg, &s);
        assert!(fs < dp0, "{} !< {}", fs / GIB, dp0 / GIB);
    }

    #[test]
    fn paper_unsharded_configs_fit_32gb() {
        // Table E.1 unsharded configs report ~16-20 GB on 32 GB V100s; our
        // estimate must land in a plausible band (fits with headroom).
        let model = presets::bert_52b();
        let cfg = ParallelConfig::new(
            Grid::new(1, 8, 8),
            Placement::looping(8, 8),
            BatchConfig::new(9, 1),
            DataParallelism::Unsharded,
        );
        let s = schedule_for(&cfg, ScheduleKind::BreadthFirst);
        let gib = estimate_memory(&model, &cfg, &s) / GIB;
        assert!((8.0..30.0).contains(&gib), "got {gib} GiB");
    }

    #[test]
    fn more_microbatches_cost_checkpoint_memory() {
        let model = presets::bert_6_6b();
        let mk = |n_mb| {
            ParallelConfig::new(
                Grid::new(16, 2, 2),
                Placement::looping(2, 8),
                BatchConfig::new(n_mb, 1),
                DataParallelism::Unsharded,
            )
        };
        let few_cfg = mk(4);
        let many_cfg = mk(16);
        let few = estimate_memory(
            &model,
            &few_cfg,
            &schedule_for(&few_cfg, ScheduleKind::BreadthFirst),
        );
        let many = estimate_memory(
            &model,
            &many_cfg,
            &schedule_for(&many_cfg, ScheduleKind::BreadthFirst),
        );
        assert!(many > few);
    }

    #[test]
    fn breadth_first_state_uses_optimistic_bracket() {
        let model = presets::bert_52b();
        let cfg = ParallelConfig::new(
            Grid::new(4, 2, 8),
            Placement::linear(8),
            BatchConfig::new(8, 1),
            DataParallelism::PartiallySharded,
        );
        let bf = estimate_memory(&model, &cfg, &schedule_for(&cfg, ScheduleKind::GPipe));
        let cfg_bf = cfg.clone();
        let bf2 = estimate_memory(
            &model,
            &cfg_bf,
            &schedule_for(&cfg_bf, ScheduleKind::BreadthFirst),
        );
        // Same checkpoints (GPipe == BF at N_loop = 1) but cheaper state.
        assert!(bf2 < bf);
    }
}
