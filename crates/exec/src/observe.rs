//! Trace export and time attribution for lowered training runs.
//!
//! Glue between the generic observability layer of
//! [`bfpp_sim::observe`] and the lowering's [`OpTag`] vocabulary:
//!
//! * [`op_category`] maps each op tag to its busy [`OpCategory`];
//! * [`attribution`] produces the exact five-category [`Breakdown`]
//!   (compute / pp-comm / dp-comm / comm-wait / bubble) of a solved
//!   lowering — the machine-checkable form of the paper's Eq. 3/7
//!   decomposition, reconciling to `makespan × resources` by
//!   construction;
//! * [`TraceBuilder`] / [`chrome_trace`] render one or more solved
//!   lowerings as Chrome-trace JSON for `ui.perfetto.dev`: one process
//!   per GPU (grouping its compute/dp/pp streams as named threads),
//!   FLOPs/bytes in the event `args`, and flow arrows along
//!   cross-stream dependency edges.

use bfpp_sim::observe::{ArgValue, Breakdown, ChromeTraceWriter, OpCategory, TraceOp, Track};
use bfpp_sim::Timeline;

use crate::lower::{LoweredGraph, OpTag};

/// The busy category of a lowered op: kernels are compute, stage-boundary
/// sends are pipeline comm, gathers/reduces are data-parallel comm.
pub fn op_category(tag: &OpTag) -> OpCategory {
    match tag {
        OpTag::Compute(_) => OpCategory::Compute,
        OpTag::PpSend { .. } => OpCategory::PpComm,
        OpTag::DpGather { .. } | OpTag::DpReduce { .. } => OpCategory::DpComm,
    }
}

/// Exact time attribution of a solved lowering.
///
/// Every nanosecond of every stream is classified into compute,
/// pipeline comm, data-parallel comm, comm-wait or bubble; see
/// [`bfpp_sim::observe::attribute`] for the idle-gap rules. The result
/// reconciles exactly: per resource the categories sum to the makespan
/// (asserted), and [`crate::breakdown`] is derived from this same pass,
/// so the analytic Eq. 3/7 terms and the trace agree to the nanosecond.
pub fn attribution(lowered: &LoweredGraph, timeline: &Timeline) -> Breakdown {
    bfpp_sim::observe::attribute(&lowered.graph, timeline, |_, tag| op_category(tag))
}

fn describe(lowered: &LoweredGraph, tag: &OpTag) -> TraceOp {
    let info = &lowered.trace_info;
    let args = match tag {
        OpTag::Compute(a) => {
            let flops = match a.dir {
                bfpp_core::Direction::Forward => info.fwd_flops,
                bfpp_core::Direction::Backward => info.bwd_flops,
            };
            vec![
                ("microbatch".to_string(), ArgValue::U64(a.microbatch as u64)),
                ("stage".to_string(), ArgValue::U64(a.stage.0 as u64)),
                ("flops".to_string(), ArgValue::U64(flops.round() as u64)),
            ]
        }
        OpTag::PpSend {
            microbatch,
            from_stage,
            ..
        } => vec![
            ("microbatch".to_string(), ArgValue::U64(*microbatch as u64)),
            ("from_stage".to_string(), ArgValue::U64(from_stage.0 as u64)),
            (
                "bytes".to_string(),
                ArgValue::U64(info.p2p_bytes.round() as u64),
            ),
        ],
        OpTag::DpGather { stage } | OpTag::DpReduce { stage } => vec![
            ("stage".to_string(), ArgValue::U64(stage.0 as u64)),
            (
                "bytes".to_string(),
                ArgValue::U64(info.dp_bytes.round() as u64),
            ),
        ],
    };
    TraceOp {
        name: tag.label(),
        category: op_category(tag),
        args,
    }
}

/// Builds a Chrome-trace JSON document from one or more solved
/// lowerings, e.g. to compare the four schedule kinds side by side in
/// Perfetto. Each added lowering gets its own pid range (one process per
/// GPU), optionally prefixed with a label.
#[derive(Debug, Default)]
pub struct TraceBuilder {
    writer: ChromeTraceWriter,
    next_pid: u32,
}

impl TraceBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one solved lowering. `label` (e.g. the schedule name)
    /// prefixes the per-GPU process names so several schedules stay
    /// distinguishable in one trace.
    pub fn add(&mut self, label: Option<&str>, lowered: &LoweredGraph, timeline: &Timeline) {
        let pid_base = self.next_pid;
        self.next_pid += lowered.compute_resources.len() as u32;
        self.writer.add_timeline(
            &lowered.graph,
            timeline,
            |r| {
                let dev = lowered.resource_device[r.index()];
                let name = lowered.graph.resource_name(r);
                // Resource names are "gpu{d}.{stream}"; show the stream
                // part as the thread name.
                let thread = name.split_once('.').map_or(name, |(_, s)| s).to_string();
                Track {
                    pid: pid_base + dev,
                    process: match label {
                        Some(l) => format!("{l}/gpu{dev}"),
                        None => format!("gpu{dev}"),
                    },
                    thread,
                }
            },
            |_, tag| describe(lowered, tag),
        );
    }

    /// As [`TraceBuilder::add`], additionally emitting the lowering's
    /// memory profile as stacked per-device `"memory (bytes)"` counter
    /// tracks (one series per buffer class) and per-link `"pp MB/s"` /
    /// `"dp MB/s"` bandwidth counters — all under the same per-GPU
    /// process ids as the time tracks, so time and memory align on one
    /// Perfetto timeline. See [`crate::memprof`].
    pub fn add_with_memory(
        &mut self,
        label: Option<&str>,
        lowered: &LoweredGraph,
        timeline: &Timeline,
    ) {
        let pid_base = self.next_pid;
        self.add(label, lowered, timeline);
        let process = |dev: u32| match label {
            Some(l) => format!("{l}/gpu{dev}"),
            None => format!("gpu{dev}"),
        };
        let profile = crate::memprof::memory_profile(lowered, timeline);
        bfpp_sim::memprof::add_memory_tracks(&mut self.writer, &profile, |dev| {
            (pid_base + dev, process(dev))
        });
        for track in crate::memprof::link_spans(lowered, timeline) {
            bfpp_sim::memprof::add_bandwidth_track(
                &mut self.writer,
                pid_base + track.device,
                &process(track.device),
                track.counter,
                &track.spans,
            );
        }
    }

    /// Renders the trace JSON (open at `ui.perfetto.dev`).
    pub fn finish(&self) -> String {
        self.writer.finish()
    }
}

/// One-shot Chrome-trace export of a single solved lowering.
pub fn chrome_trace(lowered: &LoweredGraph, timeline: &Timeline) -> String {
    let mut b = TraceBuilder::new();
    b.add(None, lowered, timeline);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelModel;
    use crate::lower::lower;
    use crate::overlap::OverlapConfig;
    use bfpp_cluster::presets::dgx1_v100;
    use bfpp_core::ScheduleKind;
    use bfpp_model::presets::bert_52b;
    use bfpp_parallel::{BatchConfig, DataParallelism, Grid, ParallelConfig, Placement};
    use bfpp_sim::observe::{validate_json, Category};
    use bfpp_sim::SimDuration;

    fn lowered_for(kind: ScheduleKind) -> LoweredGraph {
        let placement = match kind {
            // 1F1B and GPipe require one stage per device.
            ScheduleKind::OneFOneB | ScheduleKind::GPipe => Placement::linear(4),
            _ => Placement::looping(4, 4),
        };
        let cfg = ParallelConfig::new(
            Grid::new(2, 1, 4),
            placement,
            BatchConfig::new(8, 1),
            DataParallelism::FullySharded,
        );
        lower(
            &bert_52b(),
            &dgx1_v100(1),
            &cfg,
            kind,
            OverlapConfig::full(),
            &KernelModel::v100(),
        )
        .unwrap()
    }

    #[test]
    fn attribution_tiles_for_all_schedule_kinds() {
        for kind in [
            ScheduleKind::BreadthFirst,
            ScheduleKind::DepthFirst,
            ScheduleKind::OneFOneB,
            ScheduleKind::GPipe,
        ] {
            let lowered = lowered_for(kind);
            let timeline = lowered.graph.solve().unwrap();
            let bd = attribution(&lowered, &timeline);
            // The per-resource tiling is asserted inside attribute();
            // check the grand total explicitly here.
            let sum: SimDuration = Category::ALL.iter().map(|&c| bd.total(c)).sum();
            assert_eq!(
                sum,
                timeline.makespan() * lowered.graph.num_resources() as u64,
                "{kind:?}: categories must sum to makespan × resources"
            );
            assert!(
                bd.total(Category::Compute) > SimDuration::ZERO,
                "{kind:?} must have compute time"
            );
        }
    }

    #[test]
    fn attribution_reconciles_with_breakdown_terms() {
        let lowered = lowered_for(ScheduleKind::BreadthFirst);
        let timeline = lowered.graph.solve().unwrap();
        let bd = attribution(&lowered, &timeline);
        let tb = crate::breakdown(&lowered, &timeline);
        let n_dev = lowered.compute_resources.len() as f64;
        // Compute only happens on compute streams; the analytic kernel_s
        // is the per-device average of the attributed compute time.
        let attributed_kernel = bd.total(Category::Compute).as_secs_f64() / n_dev;
        assert!((attributed_kernel - tb.kernel_s).abs() < 1e-12);
        // Under full overlap all comm is on the side streams.
        assert_eq!(tb.inline_comm_s, 0.0);
        let pp = bd.total(Category::PpComm).as_secs_f64() / n_dev;
        let dp = bd.total(Category::DpComm).as_secs_f64() / n_dev;
        assert!((pp - tb.pp_stream_s).abs() < 1e-12);
        assert!((dp - tb.dp_stream_s).abs() < 1e-12);
    }

    #[test]
    fn chrome_trace_is_valid_and_annotated() {
        let lowered = lowered_for(ScheduleKind::BreadthFirst);
        let timeline = lowered.graph.solve().unwrap();
        let json = chrome_trace(&lowered, &timeline);
        validate_json(&json).expect("trace must be well-formed JSON");
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"s\""), "flow events expected");
        assert!(json.contains("\"flops\":"));
        assert!(json.contains("\"bytes\":"));
        assert!(json.contains("\"gpu0\""));
        assert!(json.contains("\"compute\""));
        // One complete event per op.
        assert_eq!(
            json.matches("\"ph\":\"X\"").count(),
            lowered.graph.num_ops()
        );
    }

    #[test]
    fn trace_builder_separates_schedules_by_pid() {
        let a = lowered_for(ScheduleKind::BreadthFirst);
        let ta = a.graph.solve().unwrap();
        let b = lowered_for(ScheduleKind::OneFOneB);
        let tb = b.graph.solve().unwrap();
        let mut builder = TraceBuilder::new();
        builder.add(Some("breadth-first"), &a, &ta);
        builder.add(Some("1f1b"), &b, &tb);
        let json = builder.finish();
        validate_json(&json).unwrap();
        assert!(json.contains("breadth-first/gpu0"));
        assert!(json.contains("1f1b/gpu3"));
        // Second schedule's pids start after the first's 4 devices.
        assert!(json.contains("\"pid\":7"));
    }
}
