//! The candidate IR of the configuration search (§5.1).
//!
//! The search's enumeration is factored out of the engine into a lazy
//! iterator of typed [`Candidate`]s, with every validity rule that used
//! to be an inline `continue` in the loop nest expressed as a named,
//! unit-testable predicate. A `Candidate` is *enumerable* — it satisfies
//! all structural divisibility rules — but not yet *measured*: whether it
//! fits memory and how fast it runs is decided by the pruning and
//! evaluation layers on top.
//!
//! [`Candidate`]s carry a total order ([`Candidate::order_key`]) that
//! mirrors the enumeration order, so "the first of equally fast
//! configurations wins" — the tie rule inherited from the original
//! serial engine — can be stated positionally ("minimum order among the
//! fastest") and preserved bit-for-bit by a parallel engine.

use bfpp_cluster::ClusterSpec;
use bfpp_core::ScheduleKind;
use bfpp_model::TransformerConfig;
use bfpp_parallel::{
    divisors, BatchConfig, DataParallelism, Grid, LayerSplit, ParallelConfig, Placement, RankCoord,
};

use crate::search::{Method, SearchOptions};

/// How a candidate apportions layers over its pipeline devices — a
/// search variable on heterogeneous fleets. This is a *strategy tag*,
/// kept `Copy` so [`Candidate`] stays a plain value; it resolves to a
/// concrete [`LayerSplit`] against a model and cluster through
/// [`Candidate::config_on`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SplitStrategy {
    /// The paper's uniform split: `num_layers / N_PP` everywhere.
    #[default]
    Uniform,
    /// Layers proportional to each pipeline device's peak flop/s
    /// (largest-remainder apportionment, every device keeps at least one
    /// layer) — so fast and slow stages finish their kernels in
    /// comparable time. Only enumerated on heterogeneous fleets.
    SpeedProportional,
}

/// One fully specified point of the search space: device grid, layer
/// placement, micro-batching, schedule kind and sharding level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Candidate {
    /// The device grid `N_DP × N_TP × N_PP`.
    pub grid: Grid,
    /// Layer-to-stage placement (carries `N_loop`).
    pub placement: Placement,
    /// Micro-batch count and size.
    pub batch: BatchConfig,
    /// The pipeline schedule to run.
    pub kind: ScheduleKind,
    /// The data-parallel sharding level.
    pub dp: DataParallelism,
    /// Layer apportionment strategy across pipeline devices.
    pub split: SplitStrategy,
}

impl Candidate {
    /// The candidate as a [`ParallelConfig`] with the uniform layer
    /// split. Use [`Candidate::config_on`] to resolve the candidate's
    /// split strategy against a concrete fleet.
    pub fn config(&self) -> ParallelConfig {
        ParallelConfig::new(self.grid, self.placement, self.batch, self.dp)
    }

    /// The candidate as a [`ParallelConfig`] with its split strategy
    /// resolved against `cluster`: [`SplitStrategy::SpeedProportional`]
    /// becomes a concrete [`LayerSplit::PerDevice`] via
    /// [`speed_proportional_layers`].
    pub fn config_on(&self, model: &TransformerConfig, cluster: &ClusterSpec) -> ParallelConfig {
        match self.split {
            SplitStrategy::Uniform => self.config(),
            SplitStrategy::SpeedProportional => self.config().with_layer_split(
                LayerSplit::PerDevice(speed_proportional_layers(model, cluster, self.grid).into()),
            ),
        }
    }

    /// The total order of the search space, matching enumeration order:
    /// `(N_TP, N_PP, S_mb, N_loop, kind, dp)` — plus the remaining
    /// fields as a tail so the order is consistent with equality even
    /// across candidates from different spaces. The split strategy is
    /// the last component: homogeneous searches (all-uniform) keep their
    /// historical order exactly.
    pub fn order_key(
        &self,
    ) -> (
        u32,
        u32,
        u32,
        u32,
        usize,
        DataParallelism,
        u32,
        u32,
        SplitStrategy,
    ) {
        let kind_rank = ScheduleKind::ALL
            .iter()
            .position(|k| *k == self.kind)
            .expect("every kind appears in ScheduleKind::ALL");
        (
            self.grid.n_tp,
            self.grid.n_pp,
            self.batch.microbatch_size,
            self.placement.n_loop(),
            kind_rank,
            self.dp,
            self.grid.n_dp,
            self.batch.num_microbatches,
            self.split,
        )
    }
}

/// Largest-remainder apportionment of the model's layers over the
/// pipeline devices, proportional to each device's peak flop/s (read at
/// the device's simulated column rank, DP 0 / TP 0). Every device keeps
/// at least one layer; the counts always sum to `num_layers`. The
/// result is a pure function of its inputs — no randomness — so
/// searches stay bit-identical across threading.
pub fn speed_proportional_layers(
    model: &TransformerConfig,
    cluster: &ClusterSpec,
    grid: Grid,
) -> Vec<u32> {
    let n_pp = grid.n_pp as usize;
    assert!(
        model.num_layers as usize >= n_pp,
        "every pipeline device needs at least one layer"
    );
    let speeds: Vec<f64> = (0..grid.n_pp)
        .map(|pp| cluster.peak_flops_of(grid.global_rank(RankCoord { dp: 0, tp: 0, pp })))
        .collect();
    let total: f64 = speeds.iter().sum();
    let layers = model.num_layers;
    let quota: Vec<f64> = speeds.iter().map(|s| layers as f64 * s / total).collect();
    let mut counts: Vec<u32> = quota.iter().map(|q| q.floor() as u32).collect();
    let assigned: u32 = counts.iter().sum();
    // Hand the remainder out by largest fractional part, ties to the
    // earlier device.
    let mut order: Vec<usize> = (0..n_pp).collect();
    order.sort_by(|&a, &b| {
        let (fa, fb) = (quota[a] - quota[a].floor(), quota[b] - quota[b].floor());
        fb.partial_cmp(&fa).unwrap().then(a.cmp(&b))
    });
    for &i in order.iter().cycle().take((layers - assigned) as usize) {
        counts[i] += 1;
    }
    // No starved devices: a stage must host at least one layer. Steal
    // from the heaviest entry (earliest on ties).
    while let Some(zero) = counts.iter().position(|&c| c == 0) {
        let max = counts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(i, _)| i)
            .expect("counts is non-empty");
        counts[max] -= 1;
        counts[zero] += 1;
    }
    counts
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.order_key().cmp(&other.order_key())
    }
}

/// Whether a tensor-parallel width divides the whole cluster. Widths are
/// drawn from the divisors of the per-node GPU count, so this only
/// excludes degenerate clusters whose size is not a multiple of a node.
pub fn tensor_width_is_valid(num_gpus: u32, n_tp: u32) -> bool {
    n_tp > 0 && num_gpus.is_multiple_of(n_tp)
}

/// Whether a pipeline depth is admissible for a method: the no-pipeline
/// method fixes `N_PP = 1`; pipelined methods need at least two devices
/// and at most one stage per layer.
pub fn pipeline_depth_is_valid(method: Method, n_pp: u32, num_layers: u32) -> bool {
    match method {
        Method::NoPipeline => n_pp == 1,
        _ => n_pp >= 2 && n_pp <= num_layers,
    }
}

/// Whether a global batch splits evenly over the data-parallel replicas.
pub fn batch_shards_evenly(global_batch: u64, n_dp: u32) -> bool {
    n_dp > 0 && global_batch.is_multiple_of(n_dp as u64)
}

/// Whether a micro-batch size divides a replica's batch exactly.
pub fn microbatch_fits_replica(per_replica: u32, s_mb: u32) -> bool {
    s_mb > 0 && per_replica.is_multiple_of(s_mb)
}

/// Whether a loop count is admissible for a method: looped methods need
/// `N_stage = N_PP · N_loop` to divide the layer count (and not exceed
/// it); non-looped methods fix `N_loop = 1`.
pub fn loop_count_is_valid(method: Method, n_pp: u32, n_loop: u32, num_layers: u32) -> bool {
    match method {
        Method::BreadthFirst | Method::DepthFirst => {
            let stages = n_pp * n_loop;
            stages <= num_layers && num_layers.is_multiple_of(stages)
        }
        _ => n_loop == 1,
    }
}

/// The depth-first generator's structural requirements: it is only
/// defined for genuinely interleaved placements (`N_loop ≥ 2`) and for
/// micro-batch counts that fill its `N_PP`-sized rounds
/// (`N_mb ≡ 0 mod N_PP`). Other methods have no extra shape rule.
pub fn depth_first_shape_is_valid(method: Method, n_loop: u32, n_mb: u32, n_pp: u32) -> bool {
    method != Method::DepthFirst || (n_loop >= 2 && n_mb.is_multiple_of(n_pp))
}

/// Whether the op-graph size `2 · N_mb · N_PP · N_loop` stays under the
/// search's action cap (a guard on the search's own runtime).
pub fn action_count_within(n_mb: u32, n_pp: u32, n_loop: u32, max_actions: u64) -> bool {
    2 * n_mb as u64 * (n_pp as u64 * n_loop as u64) <= max_actions
}

/// The admissible pipeline depths for a method on `rest = N_GPU / N_TP`
/// devices, ascending.
pub fn pipeline_depths(method: Method, rest: u32, num_layers: u32) -> Vec<u32> {
    match method {
        Method::NoPipeline => vec![1],
        _ => divisors(rest)
            .into_iter()
            .filter(|&pp| pipeline_depth_is_valid(method, pp, num_layers))
            .collect(),
    }
}

/// The admissible micro-batch sizes for one replica batch, ascending:
/// divisors of `min(per_replica, max_microbatch)` that also divide the
/// replica batch.
pub fn microbatch_sizes(per_replica: u32, max_microbatch: u32) -> Vec<u32> {
    divisors(per_replica.min(max_microbatch))
        .into_iter()
        .filter(|&s| microbatch_fits_replica(per_replica, s))
        .collect()
}

/// The admissible loop counts for a method, ascending: powers of two up
/// to `max_loop` whose stage count divides the layer count (looped
/// methods), or just 1 (non-looped).
pub fn loop_counts(method: Method, n_pp: u32, num_layers: u32, max_loop: u32) -> Vec<u32> {
    match method {
        Method::BreadthFirst | Method::DepthFirst => (0..)
            .map(|i| 1u32 << i)
            .take_while(|&l| l <= max_loop)
            .filter(|&l| loop_count_is_valid(method, n_pp, l, num_layers))
            .collect(),
        _ => vec![1],
    }
}

/// Lazily enumerates every valid [`Candidate`] for `method` at
/// `global_batch`, in [`Candidate::order_key`] order. Divisor lists are
/// computed once per enumeration level, not per inner iteration.
pub fn enumerate(
    model: &TransformerConfig,
    cluster: &ClusterSpec,
    method: Method,
    global_batch: u64,
    opts: &SearchOptions,
) -> impl Iterator<Item = Candidate> {
    let num_gpus = cluster.num_gpus();
    let spn = cluster.node.gpus_per_node;
    let num_layers = model.num_layers;
    let max_microbatch = opts.max_microbatch;
    let max_loop = opts.max_loop;
    let max_actions = opts.max_actions;
    // Speed-proportional placement is only a distinct point on fleets
    // whose devices actually differ in speed; homogeneous searches keep
    // their historical candidate stream untouched.
    let speed_diverse = cluster.hetero().is_some_and(|h| {
        h.nodes()
            .iter()
            .any(|n| n.gpu.peak_fp16_flops != h.nodes()[0].gpu.peak_fp16_flops)
    });

    divisors(spn)
        .into_iter()
        .filter(move |&n_tp| tensor_width_is_valid(num_gpus, n_tp))
        .flat_map(move |n_tp| {
            let rest = num_gpus / n_tp;
            pipeline_depths(method, rest, num_layers)
                .into_iter()
                .map(move |n_pp| (n_tp, n_pp, rest / n_pp))
        })
        .filter(move |&(_, _, n_dp)| batch_shards_evenly(global_batch, n_dp))
        .flat_map(move |(n_tp, n_pp, n_dp)| {
            let per_replica = (global_batch / n_dp as u64) as u32;
            microbatch_sizes(per_replica, max_microbatch)
                .into_iter()
                .map(move |s_mb| (n_tp, n_pp, n_dp, s_mb, per_replica / s_mb))
        })
        .flat_map(move |(n_tp, n_pp, n_dp, s_mb, n_mb)| {
            loop_counts(method, n_pp, num_layers, max_loop)
                .into_iter()
                .filter(move |&n_loop| depth_first_shape_is_valid(method, n_loop, n_mb, n_pp))
                .filter(move |&n_loop| action_count_within(n_mb, n_pp, n_loop, max_actions))
                .flat_map(move |n_loop| {
                    let splits: &[SplitStrategy] = if speed_diverse && n_pp > 1 {
                        &[SplitStrategy::Uniform, SplitStrategy::SpeedProportional]
                    } else {
                        &[SplitStrategy::Uniform]
                    };
                    method.kinds().iter().flat_map(move |&kind| {
                        method.dp_variants().iter().flat_map(move |&dp| {
                            splits.iter().map(move |&split| Candidate {
                                grid: Grid::new(n_dp, n_tp, n_pp),
                                placement: Placement::looping(n_pp, n_loop),
                                batch: BatchConfig::new(n_mb, s_mb),
                                kind,
                                dp,
                                split,
                            })
                        })
                    })
                })
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfpp_cluster::presets;
    use bfpp_model::presets as models;

    fn opts() -> SearchOptions {
        SearchOptions {
            max_microbatch: 8,
            max_loop: 16,
            max_actions: 60_000,
            threads: 1,
            ..SearchOptions::default()
        }
    }

    #[test]
    fn predicates_match_their_rules() {
        assert!(tensor_width_is_valid(64, 8));
        assert!(!tensor_width_is_valid(64, 0));
        assert!(!tensor_width_is_valid(60, 8));

        assert!(pipeline_depth_is_valid(Method::NoPipeline, 1, 64));
        assert!(!pipeline_depth_is_valid(Method::NoPipeline, 2, 64));
        assert!(pipeline_depth_is_valid(Method::BreadthFirst, 8, 64));
        assert!(!pipeline_depth_is_valid(Method::BreadthFirst, 1, 64));
        assert!(!pipeline_depth_is_valid(Method::BreadthFirst, 65, 64));

        assert!(batch_shards_evenly(48, 4));
        assert!(!batch_shards_evenly(7, 4));
        assert!(!batch_shards_evenly(7, 0));

        assert!(microbatch_fits_replica(48, 8));
        assert!(!microbatch_fits_replica(20, 8));
        assert!(!microbatch_fits_replica(20, 0));

        assert!(loop_count_is_valid(Method::BreadthFirst, 8, 8, 64));
        assert!(!loop_count_is_valid(Method::BreadthFirst, 8, 16, 64));
        assert!(
            !loop_count_is_valid(Method::BreadthFirst, 8, 3, 64),
            "24 ∤ 64"
        );
        assert!(loop_count_is_valid(Method::NonLooped, 8, 1, 64));
        assert!(!loop_count_is_valid(Method::NonLooped, 8, 2, 64));

        assert!(depth_first_shape_is_valid(Method::DepthFirst, 2, 16, 8));
        assert!(!depth_first_shape_is_valid(Method::DepthFirst, 1, 16, 8));
        assert!(!depth_first_shape_is_valid(Method::DepthFirst, 2, 12, 8));
        assert!(depth_first_shape_is_valid(Method::BreadthFirst, 1, 12, 8));

        assert!(action_count_within(12, 8, 8, 2_000));
        assert!(!action_count_within(12, 8, 8, 1_000));
    }

    #[test]
    fn list_builders_are_ascending_and_filtered() {
        assert_eq!(pipeline_depths(Method::NoPipeline, 64, 64), vec![1]);
        assert_eq!(pipeline_depths(Method::BreadthFirst, 8, 64), vec![2, 4, 8]);
        // Micro-batch sizes capped at 16 but still dividing 48 (16 ∤ 20).
        assert_eq!(microbatch_sizes(48, 16), vec![1, 2, 4, 8, 16]);
        assert_eq!(microbatch_sizes(20, 16), vec![1, 2, 4]);
        // Powers of two whose stage count divides 64 layers at N_PP = 8.
        assert_eq!(
            loop_counts(Method::BreadthFirst, 8, 64, 16),
            vec![1, 2, 4, 8]
        );
        assert_eq!(loop_counts(Method::NonLooped, 8, 64, 16), vec![1]);
    }

    #[test]
    fn enumeration_is_sorted_in_candidate_order() {
        let model = models::bert_52b();
        let cluster = presets::dgx1_v100(8);
        for method in Method::ALL {
            let cands: Vec<Candidate> = enumerate(&model, &cluster, method, 48, &opts()).collect();
            assert!(
                !cands.is_empty(),
                "{method} must have candidates at batch 48"
            );
            assert!(
                cands.windows(2).all(|w| w[0] < w[1]),
                "{method}: enumeration must be strictly ascending in order_key"
            );
        }
    }

    #[test]
    fn every_candidate_satisfies_the_predicates() {
        let model = models::bert_52b();
        let cluster = presets::dgx1_v100(8);
        let o = opts();
        for method in Method::ALL {
            for c in enumerate(&model, &cluster, method, 48, &o) {
                assert_eq!(c.grid.num_gpus(), cluster.num_gpus());
                assert!(pipeline_depth_is_valid(
                    method,
                    c.grid.n_pp,
                    model.num_layers
                ));
                assert!(batch_shards_evenly(48, c.grid.n_dp));
                assert!(loop_count_is_valid(
                    method,
                    c.grid.n_pp,
                    c.placement.n_loop(),
                    model.num_layers
                ));
                assert!(depth_first_shape_is_valid(
                    method,
                    c.placement.n_loop(),
                    c.batch.num_microbatches,
                    c.grid.n_pp
                ));
                assert!(action_count_within(
                    c.batch.num_microbatches,
                    c.grid.n_pp,
                    c.placement.n_loop(),
                    o.max_actions
                ));
                assert_eq!(c.config().global_batch_size(), 48);
            }
        }
    }

    #[test]
    fn depth_first_candidates_fill_their_rounds() {
        let model = models::bert_52b();
        let cluster = presets::dgx1_v100(8);
        for c in enumerate(&model, &cluster, Method::DepthFirst, 64, &opts()) {
            assert!(c.placement.n_loop() >= 2);
            assert_eq!(c.batch.num_microbatches % c.grid.n_pp, 0);
            assert_eq!(c.kind, ScheduleKind::DepthFirst);
            assert_eq!(c.dp, DataParallelism::Unsharded);
        }
    }

    #[test]
    fn speed_proportional_layers_favor_fast_devices_and_sum() {
        let model = models::bert_52b(); // 64 layers
        let cluster = presets::mixed_v100_a100(1, 1); // node 0 V100s, node 1 A100s
                                                      // pp is the outermost rank axis: pp=0 → rank 0 (V100 island),
                                                      // pp=1 → rank 8 (A100 island).
        let grid = Grid::new(1, 8, 2);
        let counts = speed_proportional_layers(&model, &cluster, grid);
        // Quotas 64·125/437 ≈ 18.3 and 64·312/437 ≈ 45.7; the one spare
        // layer goes to the larger fractional part (the A100 stage).
        assert_eq!(counts, vec![18, 46]);
        assert_eq!(counts.iter().sum::<u32>(), model.num_layers);
        assert_eq!(
            counts,
            speed_proportional_layers(&model, &cluster, grid),
            "apportionment is a pure function of its inputs"
        );
    }

    #[test]
    fn speed_proportional_layers_never_starve_a_stage() {
        // 4 layers over 4 stages, three slow and one fast: the raw
        // quotas floor to zero on the slow stages, and the repair loop
        // must hand every stage at least one layer while keeping the sum.
        let tiny = TransformerConfig::new("tiny-4l", 4, 8, 64, 128, 1000);
        let cluster = presets::mixed_v100_a100(3, 1);
        let counts = speed_proportional_layers(&tiny, &cluster, Grid::new(1, 8, 4));
        assert_eq!(counts.iter().sum::<u32>(), 4);
        assert!(counts.iter().all(|&c| c >= 1), "{counts:?}");
    }

    #[test]
    fn speed_proportional_is_enumerated_only_on_diverse_fleets() {
        let model = models::bert_52b();
        let o = opts();
        // Homogeneous fleets keep their historical candidate stream.
        let homogeneous = presets::dgx1_v100(16);
        assert!(
            enumerate(&model, &homogeneous, Method::BreadthFirst, 48, &o)
                .all(|c| c.split == SplitStrategy::Uniform)
        );
        // A mixed fleet enumerates both strategies, still in strict
        // candidate order, and every speed-proportional point resolves
        // to a valid per-device configuration.
        let mixed = presets::mixed_v100_a100(1, 1);
        let cands: Vec<Candidate> =
            enumerate(&model, &mixed, Method::BreadthFirst, 48, &o).collect();
        assert!(cands
            .iter()
            .any(|c| c.split == SplitStrategy::SpeedProportional));
        assert!(cands.iter().any(|c| c.split == SplitStrategy::Uniform));
        assert!(cands.windows(2).all(|w| w[0] < w[1]));
        for c in cands
            .iter()
            .filter(|c| c.split == SplitStrategy::SpeedProportional)
        {
            assert!(c.grid.n_pp > 1, "split is only a pipeline variable");
            let cfg = c.config_on(&model, &mixed);
            assert!(matches!(cfg.layer_split, LayerSplit::PerDevice(_)));
            assert!(cfg.validate(&model, &mixed).is_ok(), "{c:?}");
        }
    }

    #[test]
    fn order_key_ranks_kind_by_schedule_order() {
        let base = Candidate {
            grid: Grid::new(8, 1, 8),
            placement: Placement::linear(8),
            batch: BatchConfig::new(8, 1),
            kind: ScheduleKind::GPipe,
            dp: DataParallelism::Unsharded,
            split: SplitStrategy::Uniform,
        };
        let later = Candidate {
            kind: ScheduleKind::OneFOneB,
            ..base
        };
        assert!(base < later, "GPipe enumerates before 1F1B");
        let sharded = Candidate {
            dp: DataParallelism::FullySharded,
            ..base
        };
        assert!(base < sharded, "DP_0 enumerates before DP_FS");
    }
}
