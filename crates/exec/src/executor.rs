//! A long-lived, work-stealing worker pool for candidate evaluation.
//!
//! The search engine used to spawn a fresh set of scoped threads for
//! every evaluated chunk (`crossbeam::thread::scope`); a planning
//! *service* evaluating many concurrent requests cannot afford a thread
//! spawn per chunk, nor per-request pools that fight each other for
//! cores. This module provides the databend-`PipelineThreadsExecutor`
//! shape instead: one `Arc`'d executor created once, a fixed set of
//! worker threads each running an `execute_with_single_worker`-style
//! loop over its own queue, stealing from siblings when idle.
//!
//! Determinism: the executor never reorders *results*. Callers submit
//! tasks that write into caller-owned, order-indexed slots and reduce
//! serially after [`Executor::scope_run`] returns, so which worker ran
//! which task — and in what order — is unobservable (see
//! `exec::search`'s merge step).
//!
//! Scoped borrows: tasks may borrow from the submitting stack frame.
//! [`Executor::scope_run`] erases the lifetime to enqueue, then blocks
//! until every task of the scope has completed before returning — the
//! same guarantee `std::thread::scope` gives, on persistent workers.
//! The submitting thread also *helps*: while its scope has queued tasks,
//! it executes them itself, so a scope makes progress even on a pool
//! with zero free workers (or, transitively, when a worker submits a
//! nested scope).

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bfpp_sim::MetricsRegistry;

/// A borrowed task: runs once on some worker (or the submitter itself).
pub type ScopedTask<'env> = Box<dyn FnOnce() + Send + 'env>;

/// One submitted scope: how many of its tasks are still outstanding,
/// the condvar its submitter sleeps on, and the first panic any of its
/// tasks raised (re-raised on the submitter after the barrier).
struct ScopeState {
    remaining: AtomicUsize,
    done: Mutex<()>,
    done_cv: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl ScopeState {
    fn new(tasks: usize) -> Self {
        ScopeState {
            remaining: AtomicUsize::new(tasks),
            done: Mutex::new(()),
            done_cv: Condvar::new(),
            panic: Mutex::new(None),
        }
    }
}

/// A queued unit of work: a lifetime-erased task plus the scope it
/// reports completion to.
struct Job {
    scope: Arc<ScopeState>,
    task: Box<dyn FnOnce() + Send + 'static>,
}

/// State shared by the workers and every submitter.
struct Shared {
    /// One queue per worker. Owners pop the front; thieves (sibling
    /// workers and helping submitters) take from wherever they find
    /// work. Plain mutexed deques: the search submits a handful of
    /// coarse tasks per chunk, so queue traffic is far off the hot path.
    queues: Vec<Mutex<VecDeque<Job>>>,
    /// Sleep/wake for idle workers. The queue check is re-done under
    /// this lock before waiting, so a push (which happens before the
    /// notify) is never missed.
    idle: Mutex<()>,
    wake: Condvar,
    shutdown: AtomicBool,
    /// Round-robin cursor for task placement across queues.
    next: AtomicUsize,
    /// Workers currently running their loop. Falls below the pool size
    /// when a worker dies (today only via an injected exit ticket; the
    /// job path never unwinds) and is restored by the supervisor
    /// ([`Executor::respawn_dead`]).
    live: AtomicUsize,
    /// Chaos hook: each ticket makes one worker exit its loop as if its
    /// thread had died. Claimed at the top of the worker loop.
    exit_tickets: AtomicUsize,
    /// Chaos hook: each ticket makes one worker sleep for the given
    /// duration before taking its next job (a transient stall, not a
    /// death — the worker stays live and resumes).
    stall_tickets: Mutex<Vec<Duration>>,
    /// How many dead workers the supervisor has replaced.
    respawned: AtomicUsize,
    /// Jobs taken from a sibling's queue rather than the popper's own —
    /// the work-stealing traffic a telemetry snapshot reports.
    steals: AtomicU64,
    /// Jobs executed, by workers and helping submitters alike.
    tasks_run: AtomicU64,
    /// Cumulative job-execution time per worker *queue slot*, in
    /// nanoseconds. Indexed like `queues`; a respawned worker inherits
    /// its predecessor's slot and keeps accumulating. Helping
    /// submitters are not workers and account separately
    /// ([`Shared::helper_busy_ns`]).
    busy_ns: Vec<AtomicU64>,
    /// Job-execution time spent by helping submitters.
    helper_busy_ns: AtomicU64,
}

impl Shared {
    /// Claims one injected-fault ticket, if any are pending.
    fn claim_exit(&self) -> bool {
        self.exit_tickets
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| n.checked_sub(1))
            .is_ok()
    }

    fn claim_stall(&self) -> Option<Duration> {
        match self.stall_tickets.lock() {
            Ok(mut g) => g.pop(),
            Err(poisoned) => poisoned.into_inner().pop(),
        }
    }
}

impl Shared {
    fn lock_queue(&self, i: usize) -> MutexGuard<'_, VecDeque<Job>> {
        match self.queues[i].lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Pops work for worker `me`: own queue first (front), then steal a
    /// sibling's most recently queued job (back) — the classic deque
    /// discipline, which keeps a worker on its own stream of tasks and
    /// sends thieves to the cold end.
    fn pop_or_steal(&self, me: usize) -> Option<Job> {
        if let Some(job) = self.lock_queue(me).pop_front() {
            return Some(job);
        }
        let n = self.queues.len();
        for off in 1..n {
            if let Some(job) = self.lock_queue((me + off) % n).pop_back() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(job);
            }
        }
        None
    }

    /// Pops a job belonging to `scope` from any queue (for the helping
    /// submitter, which must not run other scopes' work — it would delay
    /// its own return behind an unrelated, possibly long task).
    fn pop_scope_job(&self, scope: &Arc<ScopeState>) -> Option<Job> {
        for i in 0..self.queues.len() {
            let mut q = self.lock_queue(i);
            if let Some(pos) = q.iter().position(|j| Arc::ptr_eq(&j.scope, scope)) {
                return q.remove(pos);
            }
        }
        None
    }
}

/// Runs one job and reports its completion (and any panic) to its
/// scope. Never unwinds: a panicking task must not take a pooled worker
/// down with it.
fn run_job(job: Job) {
    let Job { scope, task } = job;
    if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
        let mut slot = match scope.panic.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        // First panic wins; later ones are dropped (same as
        // `std::thread::scope`, which re-raises one).
        slot.get_or_insert(payload);
    }
    if scope.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
        // Last task out: wake the submitter. Lock/unlock pairs the
        // notify with the submitter's check-then-wait.
        drop(scope.done.lock());
        scope.done_cv.notify_all();
    }
}

/// The worker body: the databend `execute_with_single_worker` loop —
/// drain own queue, steal, then sleep until new work arrives. Returns
/// `true` if the worker died to an injected exit ticket (the chaos
/// path), `false` on orderly shutdown; either way the caller's guard
/// marks the worker no longer live.
fn execute_with_single_worker(shared: &Shared, me: usize) -> bool {
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return false;
        }
        if shared.claim_exit() {
            // Simulated worker death: leave without draining. Queued
            // jobs stay claimable by siblings and helping submitters,
            // so no scope is stranded even before the supervisor
            // replaces this worker.
            return true;
        }
        if let Some(stall) = shared.claim_stall() {
            std::thread::sleep(stall);
        }
        if let Some(job) = shared.pop_or_steal(me) {
            let t0 = Instant::now();
            shared.tasks_run.fetch_add(1, Ordering::Relaxed);
            run_job(job);
            shared.busy_ns[me].fetch_add(
                u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
                Ordering::Relaxed,
            );
            continue;
        }
        let guard = match shared.idle.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if shared.shutdown.load(Ordering::Acquire) {
            return false;
        }
        // Re-check under the idle lock: pushes happen before notifies,
        // so either we see the job here or the notify reaches the wait.
        // The timeout is belt-and-braces against lost wakeups.
        if (0..shared.queues.len()).all(|i| shared.lock_queue(i).is_empty()) {
            let _ = shared.wake.wait_timeout(guard, Duration::from_millis(50));
        }
    }
}

/// Spawns one worker thread on queue `me`. The worker decrements
/// `live` when its loop exits for any reason, so supervision reads an
/// accurate census even if a future worker body gains a panic path.
fn spawn_worker(shared: &Arc<Shared>, me: usize) -> JoinHandle<()> {
    shared.live.fetch_add(1, Ordering::AcqRel);
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("bfpp-exec-{me}"))
        .spawn(move || {
            struct Census<'a>(&'a Shared);
            impl Drop for Census<'_> {
                fn drop(&mut self) {
                    self.0.live.fetch_sub(1, Ordering::AcqRel);
                }
            }
            let census = Census(&shared);
            execute_with_single_worker(&shared, me);
            drop(census);
        })
        .expect("spawning an executor worker")
}

/// A fixed pool of worker threads with per-worker queues and work
/// stealing, shared (`Arc`'d) by every search request in the process.
/// See the module docs for the determinism and borrowing contracts.
pub struct Executor {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    threads: usize,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

impl Executor {
    /// Creates an executor with `threads` workers (`0` = the machine's
    /// available parallelism). Workers start immediately and live until
    /// the executor is dropped.
    pub fn new(threads: usize) -> Arc<Executor> {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        let shared = Arc::new(Shared {
            queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            idle: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            next: AtomicUsize::new(0),
            live: AtomicUsize::new(0),
            exit_tickets: AtomicUsize::new(0),
            stall_tickets: Mutex::new(Vec::new()),
            respawned: AtomicUsize::new(0),
            steals: AtomicU64::new(0),
            tasks_run: AtomicU64::new(0),
            busy_ns: (0..threads).map(|_| AtomicU64::new(0)).collect(),
            helper_busy_ns: AtomicU64::new(0),
        });
        let workers = (0..threads).map(|me| spawn_worker(&shared, me)).collect();
        Arc::new(Executor {
            shared,
            workers: Mutex::new(workers),
            threads,
        })
    }

    /// The process-wide executor every plain `best_config*` call shares,
    /// sized to the machine's available parallelism and created on first
    /// use. (A planner service may also size its own.)
    pub fn global() -> &'static Arc<Executor> {
        static GLOBAL: OnceLock<Arc<Executor>> = OnceLock::new();
        GLOBAL.get_or_init(|| Executor::new(0))
    }

    /// Number of worker threads in the pool.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Workers currently running their loop. Below
    /// [`Executor::threads`] only while a dead worker awaits respawn.
    pub fn live_workers(&self) -> usize {
        self.shared.live.load(Ordering::Acquire)
    }

    /// How many dead workers the supervisor has replaced so far.
    pub fn workers_respawned(&self) -> usize {
        self.shared.respawned.load(Ordering::Acquire)
    }

    /// Jobs currently queued across every worker queue (a point-in-time
    /// depth; the next instant may differ).
    pub fn queue_depth(&self) -> usize {
        (0..self.shared.queues.len())
            .map(|i| self.shared.lock_queue(i).len())
            .sum()
    }

    /// Jobs taken from a sibling's queue instead of the popper's own
    /// since the pool started.
    pub fn steals(&self) -> u64 {
        self.shared.steals.load(Ordering::Relaxed)
    }

    /// Jobs executed since the pool started (workers and helping
    /// submitters).
    pub fn tasks_executed(&self) -> u64 {
        self.shared.tasks_run.load(Ordering::Relaxed)
    }

    /// Cumulative job-execution nanoseconds per worker queue slot. A
    /// respawned worker inherits its slot's total. Excludes helping
    /// submitters ([`Executor::helper_busy_ns`]).
    pub fn worker_busy_ns(&self) -> Vec<u64> {
        self.shared
            .busy_ns
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Cumulative job-execution nanoseconds spent by helping
    /// submitters (scope owners running their own queued tasks).
    pub fn helper_busy_ns(&self) -> u64 {
        self.shared.helper_busy_ns.load(Ordering::Relaxed)
    }

    /// Mirrors the pool's telemetry into a registry: point-in-time
    /// gauges (`executor_queue_depth`, `executor_live_workers`) and
    /// monotonic totals (`executor_steals_total`,
    /// `executor_tasks_total`, `executor_workers_respawned_total`,
    /// busy-time per worker slot and in total). Call at snapshot time —
    /// the pool itself never touches a registry on its hot paths.
    pub fn export_metrics(&self, m: &MetricsRegistry) {
        m.gauge_set("executor_threads", self.threads as i64);
        m.gauge_set("executor_live_workers", self.live_workers() as i64);
        m.gauge_set("executor_queue_depth", self.queue_depth() as i64);
        m.counter_set("executor_steals_total", self.steals());
        m.counter_set("executor_tasks_total", self.tasks_executed());
        m.counter_set(
            "executor_workers_respawned_total",
            self.workers_respawned() as u64,
        );
        let per_worker = self.worker_busy_ns();
        m.counter_set("executor_busy_ns_total", per_worker.iter().sum());
        for (i, ns) in per_worker.into_iter().enumerate() {
            m.counter_set(&format!("executor_busy_ns_worker_{i}"), ns);
        }
        m.counter_set("executor_helper_busy_ns_total", self.helper_busy_ns());
    }

    /// Chaos hook: make `n` workers exit their loops as if their
    /// threads had died. Progress is never lost — queued jobs remain
    /// claimable by surviving workers and helping submitters — but pool
    /// capacity drops until the supervisor respawns the dead (which
    /// [`Executor::scope_run`] triggers on its next submission).
    pub fn inject_worker_exit(&self, n: usize) {
        self.shared.exit_tickets.fetch_add(n, Ordering::AcqRel);
        // Wake sleepers so parked workers notice their tickets.
        drop(self.shared.idle.lock());
        self.shared.wake.notify_all();
    }

    /// Chaos hook: make `n` workers sleep `stall` before taking their
    /// next job — a transient stall (hung NIC, page fault storm), not a
    /// death. The stalled workers stay live and resume by themselves.
    pub fn inject_worker_stall(&self, stall: Duration, n: usize) {
        {
            let mut tickets = match self.shared.stall_tickets.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            tickets.extend(std::iter::repeat_n(stall, n));
        }
        drop(self.shared.idle.lock());
        self.shared.wake.notify_all();
    }

    /// The supervisor: joins every worker whose thread has exited and
    /// spawns a replacement on the same queue, restoring the pool to
    /// its configured capacity. Returns how many workers were replaced.
    /// Called automatically at the top of [`Executor::scope_run`], so
    /// capacity self-heals on the next submission; callers may also
    /// invoke it directly (e.g. a service health check).
    pub fn respawn_dead(&self) -> usize {
        if self.shared.shutdown.load(Ordering::Acquire)
            || self.shared.live.load(Ordering::Acquire) >= self.threads
        {
            return 0;
        }
        let mut workers = match self.workers.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        // Re-check under the lock: another supervisor call may have
        // already healed the pool.
        let mut replaced = 0;
        for (me, slot) in workers.iter_mut().enumerate() {
            if slot.is_finished() {
                // Join cannot block: the thread has already exited.
                let _ = std::mem::replace(slot, spawn_worker(&self.shared, me)).join();
                replaced += 1;
            }
        }
        self.shared.respawned.fetch_add(replaced, Ordering::AcqRel);
        replaced
    }

    /// Runs every task to completion and then returns. Tasks may borrow
    /// from the caller's stack; the first panic raised by any task is
    /// re-raised here after *all* tasks have finished, leaving the pool
    /// healthy.
    pub fn scope_run<'env>(&self, tasks: Vec<ScopedTask<'env>>) {
        if tasks.is_empty() {
            return;
        }
        // Self-healing: replace any worker that died since the last
        // submission, so capacity is restored before new work queues.
        // (Even at zero live workers the scope would still complete —
        // the submitter helps — but at degraded parallelism.)
        if self.shared.live.load(Ordering::Acquire) < self.threads {
            self.respawn_dead();
        }
        let scope = Arc::new(ScopeState::new(tasks.len()));
        for task in tasks {
            // SAFETY: the borrow-carrying closure is re-typed as
            // `'static` only to live in the queue; it is guaranteed to
            // have *run* (or been dropped by `run_job`'s panic path)
            // before `scope_run` returns, because this function blocks
            // until `scope.remaining == 0` and every queued job
            // decrements it exactly once. Hence no borrow outlives the
            // caller's frame — the `std::thread::scope` argument.
            let task: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(task) };
            let i = self.shared.next.fetch_add(1, Ordering::Relaxed) % self.shared.queues.len();
            self.shared.lock_queue(i).push_back(Job {
                scope: Arc::clone(&scope),
                task,
            });
        }
        // Wake sleeping workers (push happens-before notify).
        drop(self.shared.idle.lock());
        self.shared.wake.notify_all();

        // Help with this scope's own tasks, then wait out stragglers
        // that workers already claimed.
        while scope.remaining.load(Ordering::Acquire) > 0 {
            if let Some(job) = self.shared.pop_scope_job(&scope) {
                let t0 = Instant::now();
                self.shared.tasks_run.fetch_add(1, Ordering::Relaxed);
                run_job(job);
                self.shared.helper_busy_ns.fetch_add(
                    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
                    Ordering::Relaxed,
                );
                continue;
            }
            let guard = match scope.done.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            if scope.remaining.load(Ordering::Acquire) > 0 {
                let _ = scope.done_cv.wait_timeout(guard, Duration::from_millis(50));
            }
        }
        let payload = match scope.panic.lock() {
            Ok(mut g) => g.take(),
            Err(poisoned) => poisoned.into_inner().take(),
        };
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        drop(self.shared.idle.lock());
        self.shared.wake.notify_all();
        let mut workers = match self.workers.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        for handle in workers.drain(..) {
            // A worker that panicked outside a job (impossible today)
            // must not abort teardown.
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn scope_runs_borrowing_tasks_to_completion() {
        let pool = Executor::new(3);
        let mut slots = vec![0u64; 64];
        let tasks: Vec<ScopedTask<'_>> = slots
            .chunks_mut(7)
            .enumerate()
            .map(|(i, chunk)| {
                let task: ScopedTask<'_> = Box::new(move || {
                    for (j, slot) in chunk.iter_mut().enumerate() {
                        *slot = (i * 100 + j) as u64;
                    }
                });
                task
            })
            .collect();
        pool.scope_run(tasks);
        for (i, chunk) in slots.chunks(7).enumerate() {
            for (j, slot) in chunk.iter().enumerate() {
                assert_eq!(*slot, (i * 100 + j) as u64);
            }
        }
    }

    #[test]
    fn empty_scope_is_a_noop() {
        let pool = Executor::new(1);
        pool.scope_run(Vec::new());
    }

    #[test]
    fn sequential_scopes_reuse_the_pool() {
        let pool = Executor::new(2);
        let counter = AtomicU64::new(0);
        for _ in 0..20 {
            let tasks: Vec<ScopedTask<'_>> = (0..5)
                .map(|_| {
                    let task: ScopedTask<'_> = Box::new(|| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                    task
                })
                .collect();
            pool.scope_run(tasks);
        }
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn concurrent_submitters_share_the_workers() {
        let pool = Executor::new(2);
        let total = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..10 {
                        let tasks: Vec<ScopedTask<'_>> = (0..3)
                            .map(|_| {
                                let task: ScopedTask<'_> = Box::new(|| {
                                    total.fetch_add(1, Ordering::Relaxed);
                                });
                                task
                            })
                            .collect();
                        pool.scope_run(tasks);
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * 10 * 3);
    }

    #[test]
    fn panicking_task_propagates_without_poisoning_the_pool() {
        let pool = Executor::new(2);
        let ran = AtomicU64::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let tasks: Vec<ScopedTask<'_>> = vec![
                Box::new(|| {
                    ran.fetch_add(1, Ordering::Relaxed);
                }),
                Box::new(|| panic!("task boom")),
                Box::new(|| {
                    ran.fetch_add(1, Ordering::Relaxed);
                }),
            ];
            pool.scope_run(tasks);
        }));
        assert!(result.is_err(), "the task panic must surface");
        assert_eq!(ran.load(Ordering::Relaxed), 2, "siblings still ran");
        // The pool survives and serves the next scope.
        let tasks: Vec<ScopedTask<'_>> = vec![Box::new(|| {
            ran.fetch_add(10, Ordering::Relaxed);
        })];
        pool.scope_run(tasks);
        assert_eq!(ran.load(Ordering::Relaxed), 12);
    }

    #[test]
    fn global_pool_is_shared_and_sized() {
        let a = Executor::global();
        let b = Executor::global();
        assert!(Arc::ptr_eq(a, b));
        assert!(a.threads() >= 1);
        let hit = AtomicU64::new(0);
        let tasks: Vec<ScopedTask<'_>> = vec![Box::new(|| {
            hit.fetch_add(1, Ordering::Relaxed);
        })];
        a.scope_run(tasks);
        assert_eq!(hit.load(Ordering::Relaxed), 1);
    }

    /// Spins until `cond` holds or ~5s elapse (worker death/respawn is
    /// asynchronous: the census updates when the thread body ends).
    fn eventually(what: &str, cond: impl Fn() -> bool) {
        for _ in 0..500 {
            if cond() {
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!("condition never held: {what}");
    }

    #[test]
    fn killed_workers_are_respawned_and_capacity_self_heals() {
        let pool = Executor::new(3);
        eventually("3 workers up", || pool.live_workers() == 3);
        pool.inject_worker_exit(2);
        eventually("2 workers died", || pool.live_workers() == 1);
        // The degraded pool still completes work (submitter helps).
        let n = AtomicU64::new(0);
        let tasks: Vec<ScopedTask<'_>> = (0..8)
            .map(|_| {
                let task: ScopedTask<'_> = Box::new(|| {
                    n.fetch_add(1, Ordering::Relaxed);
                });
                task
            })
            .collect();
        pool.scope_run(tasks);
        assert_eq!(n.load(Ordering::Relaxed), 8);
        // The supervisor restores full capacity (scope_run already
        // triggered it; drive it explicitly until the census settles).
        eventually("capacity restored", || {
            pool.respawn_dead();
            pool.live_workers() == 3
        });
        assert!(pool.workers_respawned() >= 2);
        // And the healed pool serves the next scope.
        let tasks: Vec<ScopedTask<'_>> = vec![Box::new(|| {
            n.fetch_add(100, Ordering::Relaxed);
        })];
        pool.scope_run(tasks);
        assert_eq!(n.load(Ordering::Relaxed), 108);
    }

    #[test]
    fn stalled_workers_recover_without_respawn() {
        let pool = Executor::new(2);
        eventually("2 workers up", || pool.live_workers() == 2);
        pool.inject_worker_stall(Duration::from_millis(50), 2);
        let n = AtomicU64::new(0);
        let tasks: Vec<ScopedTask<'_>> = (0..6)
            .map(|_| {
                let task: ScopedTask<'_> = Box::new(|| {
                    n.fetch_add(1, Ordering::Relaxed);
                });
                task
            })
            .collect();
        pool.scope_run(tasks);
        assert_eq!(n.load(Ordering::Relaxed), 6);
        assert_eq!(pool.live_workers(), 2, "a stall is not a death");
        assert_eq!(pool.workers_respawned(), 0);
    }

    #[test]
    fn telemetry_counts_tasks_and_exports_gauges() {
        let pool = Executor::new(2);
        let n = AtomicU64::new(0);
        for _ in 0..4 {
            let tasks: Vec<ScopedTask<'_>> = (0..8)
                .map(|_| {
                    let task: ScopedTask<'_> = Box::new(|| {
                        n.fetch_add(1, Ordering::Relaxed);
                    });
                    task
                })
                .collect();
            pool.scope_run(tasks);
        }
        assert_eq!(pool.tasks_executed(), 32, "every job is counted once");
        assert_eq!(pool.queue_depth(), 0, "scopes drain their queues");
        assert_eq!(pool.worker_busy_ns().len(), 2);
        let m = MetricsRegistry::new();
        pool.export_metrics(&m);
        assert_eq!(m.counter("executor_tasks_total"), 32);
        assert_eq!(m.gauge("executor_threads"), 2);
        assert_eq!(m.gauge("executor_queue_depth"), 0);
        assert_eq!(m.counter("executor_workers_respawned_total"), 0);
        // Busy time splits across worker slots and the helping
        // submitter; the export carries whatever was attributed.
        let busy = m.counter("executor_busy_ns_total") + m.counter("executor_helper_busy_ns_total");
        let _ = busy; // tasks are near-instant; totals may round to 0 ns
                      // Steal traffic is scheduling-dependent — just exercise the
                      // accessor and its export.
        assert_eq!(m.counter("executor_steals_total"), pool.steals());
    }

    #[test]
    fn drop_joins_workers() {
        let pool = Executor::new(4);
        let n = AtomicU64::new(0);
        let tasks: Vec<ScopedTask<'_>> = (0..16)
            .map(|_| {
                let task: ScopedTask<'_> = Box::new(|| {
                    n.fetch_add(1, Ordering::Relaxed);
                });
                task
            })
            .collect();
        pool.scope_run(tasks);
        drop(pool);
        assert_eq!(n.load(Ordering::Relaxed), 16);
    }
}
