//! Which classes of communication may overlap with computation.

/// Overlap capability flags.
///
/// The paper's own implementation overlaps both data- and
/// pipeline-parallel communication with computation by running them on
/// parallel CUDA streams; the Megatron-LM baselines it compares against
/// support neither (§5.1: "As Megatron-LM does not support (data and
/// pipeline-parallel) network overlap or DP_PS…").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverlapConfig {
    /// Data-parallel collectives (gradient reduction, weight
    /// reconstruction) run on a parallel stream.
    pub dp: bool,
    /// Pipeline stage-boundary transfers run on a parallel stream.
    pub pp: bool,
    /// Multiplier on every communication duration, modeling an
    /// implementation's synchronization overhead around transfers.
    /// `1.0` for the paper's library; above 1 for the Megatron-LM
    /// baseline, whose "frequent CUDA synchronizations" and allocator
    /// stalls the paper documents at up to >100% combined overhead
    /// (Appendix D.2 and footnote 10).
    pub comm_multiplier: f64,
}

impl OverlapConfig {
    /// Full overlap — the paper's implementation.
    pub fn full() -> Self {
        OverlapConfig {
            dp: true,
            pp: true,
            comm_multiplier: 1.0,
        }
    }

    /// No overlap — a blocking-communication implementation.
    pub fn none() -> Self {
        OverlapConfig {
            dp: false,
            pp: false,
            comm_multiplier: 1.0,
        }
    }

    /// The Megatron-LM baseline of §5.1: no overlap, plus the
    /// synchronization penalty around each transfer (calibrated at 2.5×
    /// so the depth-first baseline lands at the paper's measured gap to
    /// breadth-first; see DESIGN.md §4).
    pub fn megatron() -> Self {
        OverlapConfig {
            dp: false,
            pp: false,
            comm_multiplier: 2.5,
        }
    }

    /// Only pipeline transfers overlap.
    pub fn pp_only() -> Self {
        OverlapConfig {
            dp: false,
            pp: true,
            comm_multiplier: 1.0,
        }
    }

    /// Only data-parallel collectives overlap.
    pub fn dp_only() -> Self {
        OverlapConfig {
            dp: true,
            pp: false,
            comm_multiplier: 1.0,
        }
    }
}

impl Default for OverlapConfig {
    fn default() -> Self {
        OverlapConfig::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_cover_the_grid() {
        assert!(OverlapConfig::full().dp && OverlapConfig::full().pp);
        assert!(!OverlapConfig::none().dp && !OverlapConfig::none().pp);
        assert!(OverlapConfig::pp_only().pp && !OverlapConfig::pp_only().dp);
        assert!(OverlapConfig::dp_only().dp && !OverlapConfig::dp_only().pp);
        assert_eq!(OverlapConfig::default(), OverlapConfig::full());
    }

    #[test]
    fn megatron_preset_is_penalized_blocking() {
        let m = OverlapConfig::megatron();
        assert!(!m.dp && !m.pp);
        assert!(m.comm_multiplier > 1.0);
        assert_eq!(OverlapConfig::full().comm_multiplier, 1.0);
    }
}
