//! # bfpp-exec — simulated execution and configuration search
//!
//! Lowers a complete training configuration — model ([`bfpp_model`]),
//! cluster ([`bfpp_cluster`]), parallel layout ([`bfpp_parallel`]) and
//! pipeline schedule ([`bfpp_core`]) — onto the deterministic timeline
//! solver of [`bfpp_sim`], and measures what the paper measures:
//!
//! * batch duration and GPU utilization (%, and Tflop/s per GPU),
//! * peak memory per device,
//! * where the time went (compute, pipeline bubble, exposed network).
//!
//! The lowering models one pipeline "column" (data- and tensor-parallel
//! peers behave symmetrically, so their communication costs are charged
//! analytically from the group sizes): each pipeline device gets a
//! *compute stream*, a *data-parallel network stream* and a
//! *pipeline-parallel network stream*, mirroring the parallel CUDA
//! streams of the paper's Figure 4. Overlap can be disabled per class of
//! communication ([`OverlapConfig`]) to reproduce the Megatron-LM
//! baselines, which lacked it (§5.1).
//!
//! On top of single-configuration measurement sits the configuration
//! search: the paper's methodology of trying "a wide variety of
//! configurations in each case and selecting the fastest one" (§5.1),
//! which regenerates Figure 5 and Tables E.1–E.3. It is layered:
//! [`candidates`] enumerates the typed search space in a fixed total
//! order, [`prune`] rejects candidates by closed-form memory and
//! Eq. (3)/(7) throughput bounds, and [`search`] evaluates the survivors
//! on a worker pool with a deterministic, order-based reduction — the
//! winner is bit-identical to the exhaustive serial reference for any
//! thread count.
//!
//! ```
//! use bfpp_cluster::presets::dgx1_v100;
//! use bfpp_exec::{simulate, KernelModel, OverlapConfig};
//! use bfpp_model::presets::bert_52b;
//! use bfpp_core::ScheduleKind;
//! use bfpp_parallel::{BatchConfig, DataParallelism, Grid, ParallelConfig, Placement};
//!
//! let cfg = ParallelConfig::new(
//!     Grid::new(4, 2, 8),
//!     Placement::looping(8, 8),
//!     BatchConfig::new(12, 1),
//!     DataParallelism::FullySharded,
//! );
//! let m = simulate(
//!     &bert_52b(),
//!     &dgx1_v100(8),
//!     &cfg,
//!     ScheduleKind::BreadthFirst,
//!     OverlapConfig::full(),
//!     &KernelModel::v100(),
//! )
//! .unwrap();
//! assert!(m.tflops_per_gpu > 10.0);
//! ```

pub mod batch;
mod breakdown;
pub mod candidates;
pub mod executor;
mod kernel;
mod lower;
mod measure;
mod memory;
pub mod memprof;
pub mod observe;
mod overlap;
pub mod prune;
pub mod search;
pub mod warm;

pub use batch::ClassCache;
pub use breakdown::{breakdown, TimeBreakdown};
pub use candidates::{speed_proportional_layers, Candidate, SplitStrategy};
pub use executor::Executor;
pub use kernel::KernelModel;
pub use lower::{
    lower, lower_perturbed, lower_with_schedule, lower_with_schedule_perturbed, LoweredGraph,
    OpTag, TraceInfo,
};
pub use measure::{
    measure_stats, measure_timeline, simulate, simulate_perturbed, simulate_with_schedule,
    simulate_with_schedule_perturbed, Measurement, SimulateError,
};
pub use memory::estimate_memory;
pub use memprof::{chrome_trace_with_memory, link_spans, memory_profile, peak_attribution};
pub use observe::{attribution, chrome_trace, op_category, TraceBuilder};
pub use overlap::OverlapConfig;
pub use prune::{lower_bound_tflops, PruneReason};
pub use search::{EvalMode, ProgressSnapshot, SearchEnv, SearchProgress, SearchReport};
pub use warm::WarmCache;

// Re-exported so search/bench callers can build fault models and consume
// memory profiles without depending on `bfpp_sim` directly.
pub use bfpp_sim::{
    BufferClass, MemoryPeaks, MemoryProfile, MetricsRegistry, MetricsSnapshot, OpClass,
    PeakAttribution, Perturbation,
};
