//! Warm-start records: re-planning without re-enumeration.
//!
//! A planning service sees families of requests that differ only in
//! *duration-affecting* parameters — the same model, cluster, method,
//! batch and enumeration limits, re-planned under a new
//! [`Perturbation`](bfpp_sim::Perturbation)
//! (a straggler appeared, a link degraded). Everything the search does
//! before simulation is perturbation-independent:
//!
//! * the enumerated candidate list and its order,
//! * the closed-form memory filter (sizes only, no durations),
//! * the Eq. (3)/(7) throughput *upper bound* of each candidate
//!   ([`crate::prune::lower_bound_tflops`] — base durations; the search
//!   widens it by `max_speedup()` per request).
//!
//! So a completed cold search records, per enumerated candidate, its
//! `Outcome`: memory-pruned, or feasible with its throughput bound. A
//! warm request replays that record — same chunking, same reduction —
//! and only the simulations run, each via the duration-only re-solve
//! path ([`crate::LoweredGraph::perturbed_durations`] +
//! [`bfpp_sim::Solver::solve_stats_with_durations`]) over a cached clean
//! lowering. Both legs of that substitution are bit-identical to the
//! cold path (tested in `lower` and `bench::robustness`), which is what
//! makes a warm search return *exactly* what the cold search would have.
//!
//! The record cache is bounded two ways: entry count (FIFO eviction)
//! and per-record stored lowering size (ops), since lowerings dominate
//! memory. A record whose lowering budget is exhausted still warm-starts
//! — missing lowerings are rebuilt (and counted as misses, not
//! [`warm_hits`](crate::SearchReport::warm_hits)). Each stored lowering
//! additionally retains at most one *built* solver workspace
//! ([`bfpp_sim::SolveScratch`], size comparable to the lowering itself),
//! checked out and returned around each warm solve so re-plans skip the
//! O(V + E) CSR rebuild and pay only the duration re-solve.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use bfpp_cluster::ClusterSpec;
use bfpp_model::TransformerConfig;
use bfpp_sim::SolveScratch;

use crate::batch::{ClassBase, ClassKey};
use crate::candidates::Candidate;
use crate::kernel::KernelModel;
use crate::lower::LoweredGraph;
use crate::search::{Method, SearchOptions};

/// The perturbation-independent fate of one enumerated candidate,
/// recorded in enumeration order (so chunk boundaries replay exactly).
#[derive(Debug, Clone)]
pub(crate) enum Outcome {
    /// Memory lower bound exceeds the device: pruned under *every*
    /// perturbation, before any duration enters the picture.
    Memory,
    /// Feasible, with its throughput upper bound (Tflop/s per GPU,
    /// unwidened). The replay re-decides throughput pruning per request:
    /// the best-so-far trajectory depends on the perturbation.
    Feasible { cand: Candidate, ub_tflops: f64 },
}

/// A stored clean base: the lowering plus (at most one) solver workspace
/// whose CSR index was already built for it. The workspace circulates by
/// take/put — a warm evaluation checks it out, re-solves durations on the
/// prebuilt index, and returns it; concurrent sessions that lose the race
/// simply rebuild (correctness never depends on the checkout).
#[derive(Debug)]
struct WarmBase {
    lowered: Arc<LoweredGraph>,
    scratch: Mutex<Option<SolveScratch>>,
}

/// One completed cold search, replayable under any perturbation:
/// per-candidate outcomes plus the clean base lowerings of simulated
/// survivors (filled lazily, bounded by the owning cache's op budget).
#[derive(Debug)]
pub struct SweepRecord {
    pub(crate) outcomes: Vec<Outcome>,
    lowerings: Mutex<HashMap<Candidate, WarmBase>>,
    classes: Mutex<HashMap<ClassKey, Arc<ClassBase>>>,
    ops_stored: AtomicU64,
    max_ops: u64,
}

impl SweepRecord {
    pub(crate) fn new(outcomes: Vec<Outcome>, max_ops: u64) -> Self {
        SweepRecord {
            outcomes,
            lowerings: Mutex::new(HashMap::new()),
            classes: Mutex::new(HashMap::new()),
            ops_stored: AtomicU64::new(0),
            max_ops,
        }
    }

    /// The cached clean lowering for `cand`, if the record holds one.
    pub(crate) fn lowering(&self, cand: &Candidate) -> Option<Arc<LoweredGraph>> {
        self.lock_lowerings()
            .get(cand)
            .map(|base| Arc::clone(&base.lowered))
    }

    /// Checks out the built solver workspace stored with `cand`'s
    /// lowering, if any. The caller should return it via
    /// [`SweepRecord::put_scratch`] after the solve.
    pub(crate) fn take_scratch(&self, cand: &Candidate) -> Option<SolveScratch> {
        self.lock_lowerings()
            .get(cand)
            .and_then(|base| base.scratch.lock().ok()?.take())
    }

    /// Returns a built workspace to `cand`'s base (first writer wins; a
    /// workspace for an evicted candidate is silently dropped).
    pub(crate) fn put_scratch(&self, cand: &Candidate, scratch: SolveScratch) {
        if let Some(base) = self.lock_lowerings().get(cand) {
            if let Ok(mut slot) = base.scratch.lock() {
                slot.get_or_insert(scratch);
            }
        }
    }

    /// Offers a clean lowering for reuse by later warm runs. Silently
    /// dropped once the record's op budget is spent — correctness never
    /// depends on a store succeeding.
    pub(crate) fn store_lowering(&self, cand: Candidate, lowered: Arc<LoweredGraph>) {
        debug_assert!(!lowered.perturbed, "warm records hold clean bases only");
        let ops = lowered.graph.num_ops() as u64;
        // The existence check happens under the lowerings lock, before
        // any budget is charged — a duplicate offer (two warm sessions
        // racing to rebuild the same evicted base) must not consume
        // budget it never stores against.
        let mut lowerings = self.lock_lowerings();
        if lowerings.contains_key(&cand) {
            return;
        }
        if self.ops_stored.fetch_add(ops, Ordering::Relaxed) + ops > self.max_ops {
            self.ops_stored.fetch_sub(ops, Ordering::Relaxed);
            return;
        }
        lowerings.insert(
            cand,
            WarmBase {
                lowered,
                scratch: Mutex::new(None),
            },
        );
    }

    /// The cached topology-class base for `key`, if the record holds
    /// one. Class bases carry clean (unperturbed) structure only, so
    /// they are valid for any perturbation and any kernel — the record
    /// key already pins the kernel that produced the durations.
    pub(crate) fn class_base(&self, key: &ClassKey) -> Option<Arc<ClassBase>> {
        self.lock_classes().get(key).map(Arc::clone)
    }

    /// Offers a topology-class base for reuse by later warm runs,
    /// charged against the same op budget as stored lowerings. Silently
    /// dropped once the budget is spent.
    pub(crate) fn store_class(&self, key: ClassKey, base: Arc<ClassBase>) {
        let ops = base.num_ops() as u64;
        let mut classes = self.lock_classes();
        if classes.contains_key(&key) {
            return;
        }
        if self.ops_stored.fetch_add(ops, Ordering::Relaxed) + ops > self.max_ops {
            self.ops_stored.fetch_sub(ops, Ordering::Relaxed);
            return;
        }
        classes.insert(key, base);
    }

    /// Number of topology-class bases currently held.
    pub fn classes_held(&self) -> usize {
        self.lock_classes().len()
    }

    /// Number of clean lowerings currently held.
    pub fn lowerings_held(&self) -> usize {
        self.lock_lowerings().len()
    }

    fn lock_lowerings(&self) -> MutexGuard<'_, HashMap<Candidate, WarmBase>> {
        match self.lowerings.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn lock_classes(&self) -> MutexGuard<'_, HashMap<ClassKey, Arc<ClassBase>>> {
        match self.classes.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// The request signature a warm start must match exactly: everything
/// that shapes enumeration, the analytic filters, and the recorded
/// measurements. The kernel model is part of the signature — recorded
/// clean lowerings bake its durations in, and the recorded throughput
/// bounds depend on it — so requests differing only in kernel never
/// share a record. Perturbation and thread count are deliberately
/// absent — those are the parameters a warm start is allowed to vary
/// (durations never change the candidate set, and thread count never
/// changes any result).
pub(crate) fn request_key(
    model: &TransformerConfig,
    cluster: &ClusterSpec,
    method: Method,
    global_batch: u64,
    kernel: &KernelModel,
    opts: &SearchOptions,
) -> String {
    format!(
        "{}{method:?}|kernel={kernel:?}|batch={global_batch}|mm={}|ml={}|ma={}",
        scope_prefix(model, cluster),
        opts.max_microbatch,
        opts.max_loop,
        opts.max_actions,
    )
}

/// The `(model, cluster)` prefix of [`request_key`] — the granularity of
/// keyed invalidation (a topology or model change invalidates every
/// batch/method record under it at once).
fn scope_prefix(model: &TransformerConfig, cluster: &ClusterSpec) -> String {
    format!("{model:?}|{cluster:?}|")
}

struct Entries {
    map: HashMap<String, Arc<SweepRecord>>,
    /// Insertion order for FIFO eviction (deterministic, unlike
    /// hash-map iteration order).
    order: Vec<String>,
}

/// A bounded, process-wide store of [`SweepRecord`]s, shared by every
/// request of a planner. Concurrency-safe; an evicted or invalidated
/// record stays valid for searches already holding its `Arc`.
#[derive(Debug)]
pub struct WarmCache {
    entries: Mutex<Entries>,
    max_entries: usize,
    max_ops_per_record: u64,
    warm_starts: AtomicU64,
}

impl std::fmt::Debug for Entries {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Entries")
            .field("len", &self.map.len())
            .finish_non_exhaustive()
    }
}

impl Default for WarmCache {
    fn default() -> Self {
        // 64 sweeps × 8M ops ≈ the working set of a full Figure 5 + 6 +
        // Tables E reproduction, a few GiB at the default limits.
        WarmCache::with_limits(64, 8_000_000)
    }
}

impl WarmCache {
    /// A cache with the default limits (64 records, 8M stored lowering
    /// ops each).
    pub fn new() -> Self {
        WarmCache::default()
    }

    /// A cache bounded to `max_entries` records of at most
    /// `max_ops_per_record` stored lowering ops each.
    pub fn with_limits(max_entries: usize, max_ops_per_record: u64) -> Self {
        WarmCache {
            entries: Mutex::new(Entries {
                map: HashMap::new(),
                order: Vec::new(),
            }),
            max_entries: max_entries.max(1),
            max_ops_per_record,
            warm_starts: AtomicU64::new(0),
        }
    }

    pub(crate) fn lookup(&self, key: &str) -> Option<Arc<SweepRecord>> {
        let rec = self.lock().map.get(key).cloned();
        if rec.is_some() {
            self.warm_starts.fetch_add(1, Ordering::Relaxed);
        }
        rec
    }

    pub(crate) fn insert(&self, key: String, record: SweepRecord) {
        let mut entries = self.lock();
        if entries.map.insert(key.clone(), Arc::new(record)).is_none() {
            entries.order.push(key);
            while entries.order.len() > self.max_entries {
                let evicted = entries.order.remove(0);
                entries.map.remove(&evicted);
            }
        }
    }

    pub(crate) fn record_budget(&self) -> u64 {
        self.max_ops_per_record
    }

    /// Drops every record for `(model, cluster)` — the keyed
    /// invalidation a re-planning service issues when a cluster's
    /// topology (or a model's definition) changes underneath its cached
    /// sweeps. Returns how many records were dropped.
    pub fn invalidate(&self, model: &TransformerConfig, cluster: &ClusterSpec) -> usize {
        let prefix = scope_prefix(model, cluster);
        let mut entries = self.lock();
        let before = entries.map.len();
        entries.map.retain(|k, _| !k.starts_with(&prefix));
        entries.order.retain(|k| !k.starts_with(&prefix));
        before - entries.map.len()
    }

    /// Drops every record.
    pub fn clear(&self) {
        let mut entries = self.lock();
        entries.map.clear();
        entries.order.clear();
    }

    /// Number of records held.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Whether the cache holds no records.
    pub fn is_empty(&self) -> bool {
        self.lock().map.is_empty()
    }

    /// How many searches warm-started from this cache so far.
    pub fn warm_starts(&self) -> u64 {
        self.warm_starts.load(Ordering::Relaxed)
    }

    fn lock(&self) -> MutexGuard<'_, Entries> {
        match self.entries.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}
