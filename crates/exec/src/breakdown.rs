//! Where did the batch time go?
//!
//! Attributes the solved timeline to the categories the paper reasons
//! about: kernel time, communication serialized into the compute stream
//! (the non-overlapped overhead), overlapped communication (hidden on the
//! parallel streams), and compute idle time (pipeline bubble + waiting on
//! exposed communication of *other* devices).

use bfpp_sim::observe::Category;
use bfpp_sim::{SimDuration, Timeline};

use crate::lower::LoweredGraph;
use crate::observe::attribution;

/// Per-device-average time attribution for one simulated batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeBreakdown {
    /// Batch duration, seconds.
    pub makespan_s: f64,
    /// Forward/backward kernel seconds on the compute stream.
    pub kernel_s: f64,
    /// Communication seconds *serialized into the compute stream*
    /// (blocking transfers — zero under full overlap).
    pub inline_comm_s: f64,
    /// Compute-stream idle seconds (`makespan − kernel − inline_comm`):
    /// the bubble plus stalls on dependencies.
    pub idle_s: f64,
    /// Communication seconds on the parallel DP stream (hidden unless it
    /// outlasts the compute it overlaps).
    pub dp_stream_s: f64,
    /// Communication seconds on the parallel PP stream.
    pub pp_stream_s: f64,
}

impl TimeBreakdown {
    /// Fraction of the makespan the compute stream spent on kernels.
    pub fn kernel_fraction(&self) -> f64 {
        if self.makespan_s == 0.0 {
            0.0
        } else {
            self.kernel_s / self.makespan_s
        }
    }
}

/// Computes the per-device-average breakdown of a solved lowering.
///
/// Derived from the exact five-category attribution pass
/// ([`crate::observe::attribution`]), so the analytic terms reported
/// here and an exported trace reconcile to the nanosecond: per compute
/// stream, `kernel + inline_comm + idle == makespan` holds in integer
/// arithmetic before the single conversion to seconds.
pub fn breakdown(lowered: &LoweredGraph, timeline: &Timeline) -> TimeBreakdown {
    let bd = attribution(lowered, timeline);
    let n_dev = lowered.compute_resources.len() as f64;
    let mut kernel = SimDuration::ZERO;
    let mut inline_comm = SimDuration::ZERO;
    let mut idle = SimDuration::ZERO;
    let mut dp_stream = SimDuration::ZERO;
    let mut pp_stream = SimDuration::ZERO;

    for row in bd.per_resource() {
        // Kernels only ever run on compute streams.
        kernel += row.time(Category::Compute);
        if lowered.compute_resources.contains(&row.resource()) {
            // Comm on the compute stream is serialized (blocking) comm;
            // compute-stream idle is the bubble plus comm-wait.
            inline_comm += row.time(Category::PpComm) + row.time(Category::DpComm);
            idle += row.time(Category::CommWait) + row.time(Category::Bubble);
        } else {
            pp_stream += row.time(Category::PpComm);
            dp_stream += row.time(Category::DpComm);
        }
    }

    TimeBreakdown {
        makespan_s: bd.makespan().as_secs_f64(),
        kernel_s: kernel.as_secs_f64() / n_dev,
        inline_comm_s: inline_comm.as_secs_f64() / n_dev,
        idle_s: idle.as_secs_f64() / n_dev,
        dp_stream_s: dp_stream.as_secs_f64() / n_dev,
        pp_stream_s: pp_stream.as_secs_f64() / n_dev,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelModel;
    use crate::lower::lower;
    use crate::overlap::OverlapConfig;
    use bfpp_cluster::presets::dgx1_v100;
    use bfpp_core::ScheduleKind;
    use bfpp_model::presets::bert_52b;
    use bfpp_parallel::{BatchConfig, DataParallelism, Grid, ParallelConfig, Placement};

    fn run(overlap: OverlapConfig) -> TimeBreakdown {
        let cfg = ParallelConfig::new(
            Grid::new(16, 2, 2),
            Placement::looping(2, 16),
            BatchConfig::new(4, 1),
            DataParallelism::FullySharded,
        );
        let lowered = lower(
            &bert_52b(),
            &dgx1_v100(8),
            &cfg,
            ScheduleKind::BreadthFirst,
            overlap,
            &KernelModel::v100(),
        )
        .unwrap();
        let t = lowered.graph.solve().unwrap();
        breakdown(&lowered, &t)
    }

    #[test]
    fn full_overlap_has_no_inline_comm() {
        let b = run(OverlapConfig::full());
        assert_eq!(b.inline_comm_s, 0.0);
        assert!(
            b.dp_stream_s > 0.0,
            "FS gathers must appear on the DP stream"
        );
        assert!(b.pp_stream_s > 0.0);
        assert!(b.kernel_fraction() > 0.5, "{b:?}");
    }

    #[test]
    fn no_overlap_serializes_comm() {
        let b = run(OverlapConfig::none());
        assert!(b.inline_comm_s > 0.0);
        assert_eq!(b.dp_stream_s, 0.0);
        assert_eq!(b.pp_stream_s, 0.0);
    }

    #[test]
    fn categories_tile_the_makespan() {
        for ov in [OverlapConfig::full(), OverlapConfig::none()] {
            let b = run(ov);
            let sum = b.kernel_s + b.inline_comm_s + b.idle_s;
            assert!(
                (sum - b.makespan_s).abs() < 1e-9 * b.makespan_s.max(1.0),
                "{b:?}"
            );
        }
    }

    #[test]
    fn kernel_time_is_overlap_invariant() {
        let with = run(OverlapConfig::full());
        let without = run(OverlapConfig::none());
        assert!((with.kernel_s - without.kernel_s).abs() < 1e-9);
        assert!(without.makespan_s > with.makespan_s);
    }
}
