//! The kernel-efficiency model.
//!
//! The simulator needs to convert flops into seconds. GPUs do not run
//! transformer kernels at peak: achieved throughput depends on
//! *thread-level parallelism* (§3.1 — enough rows in the GEMMs, i.e.
//! tokens per micro-batch) and on the *width* of the weight matrices on
//! this device (tensor parallelism slices them `N_TP` ways). We model the
//! achievable fraction of peak as a product of two saturation terms:
//!
//! `eff = eff_max · t/(t + t_half) · w/(w + w_half)`
//!
//! with `t = S_mb · S_seq` (tokens per kernel launch) and
//! `w = S_hidden / N_TP` (sliced width).
//!
//! Calibration (documented in DESIGN.md §4): `eff_max = 0.65`,
//! `t_half = 128`, `w_half = 1024` put the best V100 configurations in
//! the paper's observed 50–62 Tflop/s band and reproduce the observed
//! penalty of high tensor parallelism and tiny micro-batches. The *shape*
//! of the efficiency surface, not its absolute level, is what the
//! reproduction claims.

use bfpp_model::TransformerConfig;

/// Achievable-fraction-of-peak model for transformer kernels.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelModel {
    /// Ceiling on the achievable fraction of peak flop/s.
    pub eff_max: f64,
    /// Tokens per kernel at which thread-level parallelism reaches half
    /// of its asymptote.
    pub token_half: f64,
    /// Sliced hidden width at which kernel width efficiency reaches half
    /// of its asymptote.
    pub width_half: f64,
}

impl KernelModel {
    /// Calibration for V100 (the paper's evaluation hardware).
    pub fn v100() -> Self {
        KernelModel {
            eff_max: 0.65,
            token_half: 128.0,
            width_half: 1024.0,
        }
    }

    /// Calibration for A100: slightly lower achievable fraction (the
    /// conclusion notes the memory-bandwidth bottleneck "worsens with
    /// every new generation") and a higher saturation width.
    pub fn a100() -> Self {
        KernelModel {
            eff_max: 0.60,
            token_half: 192.0,
            width_half: 1536.0,
        }
    }

    /// An idealized device that always runs at peak — useful in tests to
    /// isolate scheduling effects from kernel effects.
    pub fn ideal() -> Self {
        KernelModel {
            eff_max: 1.0,
            token_half: 0.0,
            width_half: 0.0,
        }
    }

    /// The achievable fraction of peak for a layer kernel processing a
    /// micro-batch of `s_mb` sequences under `n_tp`-way tensor
    /// parallelism. Always in `(0, eff_max]`.
    ///
    /// # Panics
    ///
    /// Panics if `s_mb` or `n_tp` is zero.
    pub fn efficiency(&self, model: &TransformerConfig, s_mb: u32, n_tp: u32) -> f64 {
        assert!(s_mb > 0, "micro-batch size must be positive");
        assert!(n_tp > 0, "N_TP must be positive");
        let t = s_mb as f64 * model.seq_length as f64;
        let w = model.hidden_size as f64 / n_tp as f64;
        self.eff_max * (t / (t + self.token_half)) * (w / (w + self.width_half))
    }

    /// Seconds to execute `flops` floating-point operations at
    /// `peak_flops` peak and the given efficiency context.
    pub fn seconds(
        &self,
        model: &TransformerConfig,
        s_mb: u32,
        n_tp: u32,
        flops: f64,
        peak_flops: f64,
    ) -> f64 {
        flops / (peak_flops * self.efficiency(model, s_mb, n_tp))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfpp_model::presets;

    #[test]
    fn efficiency_increases_with_microbatch() {
        let k = KernelModel::v100();
        let m = presets::bert_6_6b();
        let e1 = k.efficiency(&m, 1, 1);
        let e4 = k.efficiency(&m, 4, 1);
        assert!(e4 > e1);
        assert!(e4 <= k.eff_max);
    }

    #[test]
    fn efficiency_decreases_with_tensor_parallelism() {
        let k = KernelModel::v100();
        let m = presets::bert_52b();
        assert!(k.efficiency(&m, 1, 1) > k.efficiency(&m, 1, 8));
    }

    #[test]
    fn big_models_saturate_higher() {
        // §3.1: "larger ones generally allow for a high kernel efficiency
        // even for small micro-batches".
        let k = KernelModel::v100();
        let small = presets::bert_6_6b();
        let large = presets::bert_52b();
        assert!(k.efficiency(&large, 1, 8) > k.efficiency(&small, 1, 8));
    }

    #[test]
    fn calibration_is_in_the_papers_band() {
        // The best observed 52 B throughput in Table E.1 is ~62 Tflop/s on
        // a 125 Tflop/s V100 (~50%); our model must land in that band for
        // the good configurations.
        let k = KernelModel::v100();
        let m = presets::bert_52b();
        let frac = k.efficiency(&m, 4, 2);
        let tflops = frac * 125.0;
        assert!(
            (50.0..68.0).contains(&tflops),
            "calibration off: {tflops} Tflop/s"
        );
    }

    #[test]
    fn ideal_model_runs_at_peak() {
        let k = KernelModel::ideal();
        let m = presets::bert_6_6b();
        assert_eq!(k.efficiency(&m, 1, 8), 1.0);
        assert_eq!(k.seconds(&m, 1, 8, 125e12, 125e12), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_microbatch_rejected() {
        KernelModel::v100().efficiency(&presets::bert_52b(), 0, 1);
    }
}
