//! Layers with hand-written backward passes.
//!
//! Layers are *stateless between calls*: `forward` is a pure function of
//! (parameters, input), and `backward` recomputes whatever intermediates
//! it needs from the stage input — i.e. real activation checkpointing,
//! which is exactly what the paper assumes (§A.1: "mixed precision…
//! activation checkpoints"; here we stay in f32 for exactness). This is
//! what lets many micro-batches be in flight without aliasing state.

use crate::tensor::Tensor;

/// A differentiable layer.
pub trait Layer: Send {
    /// Computes the layer output for `input` (`batch × in_dim`).
    fn forward(&self, input: &Tensor) -> Tensor;

    /// Clones the layer behind a box (lets [`Stage`] be `Clone`, which
    /// the pipeline executor needs to replicate stages across
    /// data-parallel workers).
    fn clone_box(&self) -> Box<dyn Layer>;

    /// Given the stage `input` and the gradient of the loss w.r.t. this
    /// layer's *output*, returns the gradient w.r.t. the input and
    /// accumulates parameter gradients into `grads` (same layout as
    /// [`Layer::write_params`], accumulated in place).
    fn backward(&self, input: &Tensor, grad_out: &Tensor, grads: &mut [f32]) -> Tensor;

    /// Number of scalar parameters.
    fn num_params(&self) -> usize;

    /// Flattens the parameters into a vector segment.
    fn write_params(&self, out: &mut [f32]);

    /// Loads parameters from a vector segment.
    fn read_params(&mut self, src: &[f32]);
}

/// A fully connected layer: `y = x·W + b`.
#[derive(Debug, Clone)]
pub struct Linear {
    w: Tensor,
    b: Tensor,
}

impl Linear {
    /// Creates a linear layer with the given weights (`in × out`) and
    /// bias (`1 × out`).
    ///
    /// # Panics
    ///
    /// Panics if the bias width does not match the weights.
    pub fn new(w: Tensor, b: Tensor) -> Self {
        assert_eq!(b.rows(), 1, "bias must be a row vector");
        assert_eq!(b.cols(), w.cols(), "bias width mismatch");
        Linear { w, b }
    }

    /// Deterministic pseudo-random initialization (a small LCG — no
    /// external entropy, so builds are reproducible across platforms).
    pub fn seeded(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // Xavier-uniform: (-a, a) with a = sqrt(6 / (in + out)).
            let a = (6.0 / (in_dim + out_dim) as f32).sqrt();
            ((state >> 11) as f32 / (1u64 << 53) as f32 - 0.5) * 2.0 * a
        };
        let w = Tensor::from_vec(
            in_dim,
            out_dim,
            (0..in_dim * out_dim).map(|_| next()).collect(),
        );
        let b = Tensor::from_vec(1, out_dim, (0..out_dim).map(|_| next()).collect());
        Linear { w, b }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.w.rows()
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.w.cols()
    }
}

impl Layer for Linear {
    fn forward(&self, input: &Tensor) -> Tensor {
        input.matmul(&self.w).add_row(&self.b)
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn backward(&self, input: &Tensor, grad_out: &Tensor, grads: &mut [f32]) -> Tensor {
        let grad_w = input.matmul_tn(grad_out);
        let grad_b = grad_out.col_sums();
        let nw = grad_w.data().len();
        for (g, x) in grads[..nw].iter_mut().zip(grad_w.data()) {
            *g += *x;
        }
        for (g, x) in grads[nw..].iter_mut().zip(grad_b.data()) {
            *g += *x;
        }
        grad_out.matmul_nt(&self.w)
    }

    fn num_params(&self) -> usize {
        self.w.data().len() + self.b.data().len()
    }

    fn write_params(&self, out: &mut [f32]) {
        let nw = self.w.data().len();
        out[..nw].copy_from_slice(self.w.data());
        out[nw..nw + self.b.data().len()].copy_from_slice(self.b.data());
    }

    fn read_params(&mut self, src: &[f32]) {
        let nw = self.w.data().len();
        let nb = self.b.data().len();
        self.w.data_mut().copy_from_slice(&src[..nw]);
        self.b.data_mut().copy_from_slice(&src[nw..nw + nb]);
    }
}

/// Element-wise `tanh` activation (exact, cheap gradient).
#[derive(Debug, Clone, Default)]
pub struct Tanh;

impl Layer for Tanh {
    fn forward(&self, input: &Tensor) -> Tensor {
        input.map(f32::tanh)
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn backward(&self, input: &Tensor, grad_out: &Tensor, _grads: &mut [f32]) -> Tensor {
        let y = self.forward(input);
        // d tanh = 1 − y².
        grad_out.hadamard(&y.map(|v| 1.0 - v * v))
    }

    fn num_params(&self) -> usize {
        0
    }

    fn write_params(&self, _out: &mut [f32]) {}

    fn read_params(&mut self, _src: &[f32]) {}
}

/// Layer normalization over each row (token), with learned gain and bias:
/// `y = γ ⊙ (x − μ)/σ + β`, the normalization every transformer layer
/// uses (paper §A.1's layer structure).
#[derive(Debug, Clone)]
pub struct LayerNorm {
    gamma: Tensor,
    beta: Tensor,
    eps: f32,
}

impl LayerNorm {
    /// Creates a layer norm over rows of width `dim` (γ = 1, β = 0).
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dim must be positive");
        LayerNorm {
            gamma: Tensor::from_vec(1, dim, vec![1.0; dim]),
            beta: Tensor::zeros(1, dim),
            eps: 1e-5,
        }
    }

    /// Row width.
    pub fn dim(&self) -> usize {
        self.gamma.cols()
    }

    /// Per-row mean and 1/σ for `input`.
    fn stats(&self, input: &Tensor) -> (Vec<f32>, Vec<f32>) {
        let d = self.dim() as f32;
        let mut means = Vec::with_capacity(input.rows());
        let mut inv_stds = Vec::with_capacity(input.rows());
        for r in 0..input.rows() {
            let row = &input.data()[r * input.cols()..(r + 1) * input.cols()];
            let mean = row.iter().sum::<f32>() / d;
            let var = row.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / d;
            means.push(mean);
            inv_stds.push(1.0 / (var + self.eps).sqrt());
        }
        (means, inv_stds)
    }
}

impl Layer for LayerNorm {
    fn forward(&self, input: &Tensor) -> Tensor {
        assert_eq!(input.cols(), self.dim(), "layer norm width mismatch");
        let (means, inv_stds) = self.stats(input);
        let mut out = input.clone();
        let cols = input.cols();
        for r in 0..input.rows() {
            for c in 0..cols {
                let x = input.at(r, c);
                out.data_mut()[r * cols + c] =
                    self.gamma.data()[c] * (x - means[r]) * inv_stds[r] + self.beta.data()[c];
            }
        }
        out
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn backward(&self, input: &Tensor, grad_out: &Tensor, grads: &mut [f32]) -> Tensor {
        let d = self.dim();
        let n = d as f32;
        let (means, inv_stds) = self.stats(input);
        let mut grad_in = Tensor::zeros(input.rows(), d);
        // grads layout: [gamma, beta].
        let (g_gamma, g_beta) = grads.split_at_mut(d);
        for r in 0..input.rows() {
            let mu = means[r];
            let is = inv_stds[r];
            // x̂ and upstream-through-γ.
            let mut sum_dy_xhat = 0.0;
            let mut sum_dy = 0.0;
            let mut xhat = vec![0.0f32; d];
            let mut dy = vec![0.0f32; d];
            for c in 0..d {
                xhat[c] = (input.at(r, c) - mu) * is;
                let g = grad_out.at(r, c);
                g_gamma[c] += g * xhat[c];
                g_beta[c] += g;
                dy[c] = g * self.gamma.data()[c];
                sum_dy += dy[c];
                sum_dy_xhat += dy[c] * xhat[c];
            }
            // dx = (is/n) · (n·dy − Σdy − x̂·Σ(dy·x̂)).
            for c in 0..d {
                grad_in.data_mut()[r * d + c] =
                    (is / n) * (n * dy[c] - sum_dy - xhat[c] * sum_dy_xhat);
            }
        }
        grad_in
    }

    fn num_params(&self) -> usize {
        2 * self.dim()
    }

    fn write_params(&self, out: &mut [f32]) {
        let d = self.dim();
        out[..d].copy_from_slice(self.gamma.data());
        out[d..2 * d].copy_from_slice(self.beta.data());
    }

    fn read_params(&mut self, src: &[f32]) {
        let d = self.dim();
        self.gamma.data_mut().copy_from_slice(&src[..d]);
        self.beta.data_mut().copy_from_slice(&src[d..2 * d]);
    }
}

/// A pipeline stage: an ordered stack of layers with a flattened
/// parameter vector (the unit of sharding for `DP_FS`).
pub struct Stage {
    layers: Vec<Box<dyn Layer>>,
}

impl Clone for Stage {
    fn clone(&self) -> Self {
        Stage {
            layers: self.layers.iter().map(|l| l.clone_box()).collect(),
        }
    }
}

impl std::fmt::Debug for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Stage({} layers, {} params)",
            self.layers.len(),
            self.num_params()
        )
    }
}

impl Stage {
    /// Builds a stage from layers.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Stage { layers }
    }

    /// Number of scalar parameters across all layers.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(|l| l.num_params()).sum()
    }

    /// Forward through the whole stack.
    pub fn forward(&self, input: &Tensor) -> Tensor {
        let mut x = input.clone();
        for l in &self.layers {
            x = l.forward(&x);
        }
        x
    }

    /// Backward through the stack with recomputation: re-runs the forward
    /// pass from the checkpointed `input` to recover intermediates, then
    /// walks back. Parameter gradients are *accumulated* into `grads`
    /// (flattened, same layout as [`Stage::param_vector`]).
    ///
    /// # Panics
    ///
    /// Panics if `grads.len() != self.num_params()`.
    pub fn backward(&self, input: &Tensor, grad_out: &Tensor, grads: &mut [f32]) -> Tensor {
        assert_eq!(grads.len(), self.num_params(), "gradient buffer size");
        // Recompute intermediate inputs (activation checkpointing).
        let mut inputs: Vec<Tensor> = Vec::with_capacity(self.layers.len());
        let mut x = input.clone();
        for l in &self.layers {
            inputs.push(x.clone());
            x = l.forward(&x);
        }
        // Walk back, slicing the flat gradient buffer per layer.
        let mut offsets: Vec<usize> = Vec::with_capacity(self.layers.len() + 1);
        let mut acc = 0;
        for l in &self.layers {
            offsets.push(acc);
            acc += l.num_params();
        }
        offsets.push(acc);
        let mut g = grad_out.clone();
        for (i, l) in self.layers.iter().enumerate().rev() {
            let seg = &mut grads[offsets[i]..offsets[i + 1]];
            g = l.backward(&inputs[i], &g, seg);
        }
        g
    }

    /// Flattened parameter vector.
    pub fn param_vector(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.num_params()];
        let mut offset = 0;
        for l in &self.layers {
            let n = l.num_params();
            l.write_params(&mut out[offset..offset + n]);
            offset += n;
        }
        out
    }

    /// Loads parameters from a flattened vector.
    ///
    /// # Panics
    ///
    /// Panics if `src.len() != self.num_params()`.
    pub fn set_param_vector(&mut self, src: &[f32]) {
        assert_eq!(src.len(), self.num_params(), "parameter vector size");
        let mut offset = 0;
        for l in &mut self.layers {
            let n = l.num_params();
            l.read_params(&src[offset..offset + n]);
            offset += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff_check(stage: &Stage, input: &Tensor) {
        // Loss = sum of outputs; grad_out = ones.
        let out = stage.forward(input);
        let ones = Tensor::from_vec(out.rows(), out.cols(), vec![1.0; out.rows() * out.cols()]);
        let mut grads = vec![0.0; stage.num_params()];
        let grad_in = stage.backward(input, &ones, &mut grads);

        // Parameter gradients by central differences.
        let base = stage.param_vector();
        let eps = 1e-3f32;
        let mut stage_mut = Stage::new(vec![]);
        let _ = &mut stage_mut;
        for idx in [0usize, base.len() / 2, base.len() - 1] {
            let mut plus = base.clone();
            plus[idx] += eps;
            let mut minus = base.clone();
            minus[idx] -= eps;
            let mut s2 = clone_like(stage);
            s2.set_param_vector(&plus);
            let f_plus: f32 = s2.forward(input).data().iter().sum();
            s2.set_param_vector(&minus);
            let f_minus: f32 = s2.forward(input).data().iter().sum();
            let numeric = (f_plus - f_minus) / (2.0 * eps);
            assert!(
                (numeric - grads[idx]).abs() < 2e-2 * (1.0 + numeric.abs()),
                "param {idx}: numeric {numeric} vs analytic {}",
                grads[idx]
            );
        }

        // Input gradient by central differences (first element).
        let mut xp = input.clone();
        xp.data_mut()[0] += eps;
        let mut xm = input.clone();
        xm.data_mut()[0] -= eps;
        let fp: f32 = stage.forward(&xp).data().iter().sum();
        let fm: f32 = stage.forward(&xm).data().iter().sum();
        let numeric = (fp - fm) / (2.0 * eps);
        assert!(
            (numeric - grad_in.data()[0]).abs() < 2e-2 * (1.0 + numeric.abs()),
            "input grad: numeric {numeric} vs analytic {}",
            grad_in.data()[0]
        );
    }

    fn clone_like(stage: &Stage) -> Stage {
        // Rebuild the same architecture as the demo stage below.
        let s = demo_stage();
        let mut s2 = s;
        s2.set_param_vector(&stage.param_vector());
        s2
    }

    fn demo_stage() -> Stage {
        Stage::new(vec![
            Box::new(Linear::seeded(4, 6, 1)),
            Box::new(Tanh),
            Box::new(Linear::seeded(6, 3, 2)),
        ])
    }

    fn demo_input() -> Tensor {
        Tensor::from_vec(2, 4, vec![0.1, -0.2, 0.3, 0.4, -0.5, 0.6, -0.7, 0.8])
    }

    #[test]
    fn gradients_match_finite_differences() {
        finite_diff_check(&demo_stage(), &demo_input());
    }

    #[test]
    fn param_vector_roundtrips() {
        let s = demo_stage();
        let v = s.param_vector();
        let mut s2 = demo_stage();
        s2.set_param_vector(&v);
        assert_eq!(s2.param_vector(), v);
        assert_eq!(v.len(), s.num_params());
        assert_eq!(s.num_params(), 4 * 6 + 6 + 6 * 3 + 3);
    }

    #[test]
    fn backward_accumulates() {
        let s = demo_stage();
        let x = demo_input();
        let out = s.forward(&x);
        let ones = Tensor::from_vec(out.rows(), out.cols(), vec![1.0; out.data().len()]);
        let mut g1 = vec![0.0; s.num_params()];
        s.backward(&x, &ones, &mut g1);
        let mut g2 = vec![0.0; s.num_params()];
        s.backward(&x, &ones, &mut g2);
        s.backward(&x, &ones, &mut g2);
        for (a, b) in g1.iter().zip(&g2) {
            assert!((2.0 * a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn seeded_init_is_deterministic() {
        let a = Linear::seeded(8, 8, 42);
        let b = Linear::seeded(8, 8, 42);
        let c = Linear::seeded(8, 8, 43);
        let to_v = |l: &Linear| {
            let mut v = vec![0.0; l.num_params()];
            l.write_params(&mut v);
            v
        };
        assert_eq!(to_v(&a), to_v(&b));
        assert_ne!(to_v(&a), to_v(&c));
        assert_eq!(a.in_dim(), 8);
        assert_eq!(a.out_dim(), 8);
    }

    #[test]
    fn layer_norm_normalizes_rows() {
        let ln = LayerNorm::new(4);
        let x = Tensor::from_vec(2, 4, vec![1., 2., 3., 4., -10., 0., 10., 20.]);
        let y = ln.forward(&x);
        for r in 0..2 {
            let row: Vec<f32> = (0..4).map(|c| y.at(r, c)).collect();
            let mean: f32 = row.iter().sum::<f32>() / 4.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "row {r} var {var}");
        }
    }

    #[test]
    fn layer_norm_gradients_match_finite_differences() {
        let mut ln = LayerNorm::new(4);
        // Non-trivial gain/bias so their gradients are exercised.
        ln.read_params(&[1.2, 0.8, -0.5, 1.0, 0.1, -0.2, 0.3, 0.0]);
        let stage = Stage::new(vec![Box::new(ln)]);
        let x = Tensor::from_vec(2, 4, vec![0.3, -0.7, 1.1, 0.2, -0.4, 0.9, 0.0, -1.3]);
        let out = stage.forward(&x);
        // Weighted loss so row symmetry doesn't hide errors.
        let w: Vec<f32> = (0..8).map(|i| 0.25 + 0.1 * i as f32).collect();
        let gout = Tensor::from_vec(2, 4, w.clone());
        let mut grads = vec![0.0; stage.num_params()];
        let grad_in = stage.backward(&x, &gout, &mut grads);
        let loss = |s: &Stage, x: &Tensor| -> f32 {
            s.forward(x)
                .data()
                .iter()
                .zip(&w)
                .map(|(v, wi)| v * wi)
                .sum()
        };
        let _ = out;
        let eps = 1e-3;
        // Parameter gradients.
        let base = stage.param_vector();
        for idx in 0..base.len() {
            let mut s2 = Stage::new(vec![Box::new(LayerNorm::new(4))]);
            let mut p = base.clone();
            p[idx] += eps;
            s2.set_param_vector(&p);
            let fp = loss(&s2, &x);
            p[idx] -= 2.0 * eps;
            s2.set_param_vector(&p);
            let fm = loss(&s2, &x);
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (numeric - grads[idx]).abs() < 2e-2 * (1.0 + numeric.abs()),
                "param {idx}: numeric {numeric} vs {}",
                grads[idx]
            );
        }
        // Input gradients.
        for i in 0..8 {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let numeric = (loss(&stage, &xp) - loss(&stage, &xm)) / (2.0 * eps);
            assert!(
                (numeric - grad_in.data()[i]).abs() < 2e-2 * (1.0 + numeric.abs()),
                "input {i}: numeric {numeric} vs {}",
                grad_in.data()[i]
            );
        }
    }

    #[test]
    fn tanh_has_no_params() {
        let t = Tanh;
        assert_eq!(t.num_params(), 0);
        let x = demo_input();
        let y = t.forward(&x);
        assert!((y.at(0, 0) - 0.1f32.tanh()).abs() < 1e-7);
    }
}
