//! A minimal dense f32 matrix type with exactly the operations the
//! training substrate needs. Row-major, two-dimensional.

use std::fmt;

/// A dense row-major f32 matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// A zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "dimensions must be positive");
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols` or a dimension is zero.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert!(rows > 0 && cols > 0, "dimensions must be positive");
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Tensor { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying row-major slice.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying slice.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn at(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// `self · other` (matrix product).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Tensor::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let row = &other.data[k * other.cols..(k + 1) * other.cols];
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, b) in out_row.iter_mut().zip(row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ · other` — used for weight gradients (`xᵀ · g`).
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != other.rows`.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rows, other.rows, "matmul_tn shape mismatch");
        let mut out = Tensor::zeros(self.cols, other.cols);
        for r in 0..self.rows {
            for i in 0..self.cols {
                let a = self.data[r * self.cols + i];
                if a == 0.0 {
                    continue;
                }
                let grow = &other.data[r * other.cols..(r + 1) * other.cols];
                let orow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, g) in orow.iter_mut().zip(grow) {
                    *o += a * g;
                }
            }
        }
        out
    }

    /// `self · otherᵀ` — used for input gradients (`g · Wᵀ`).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols`.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.cols, "matmul_nt shape mismatch");
        let mut out = Tensor::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let arow = &self.data[i * self.cols..(i + 1) * self.cols];
            for j in 0..other.rows {
                let brow = &other.data[j * other.cols..(j + 1) * other.cols];
                let mut acc = 0.0;
                for (a, b) in arow.iter().zip(brow) {
                    acc += a * b;
                }
                out.data[i * other.rows + j] = acc;
            }
        }
        out
    }

    /// Adds `other` element-wise into `self`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "add_assign shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += *b;
        }
    }

    /// `self − other`, element-wise.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "sub shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Tensor::from_vec(self.rows, self.cols, data)
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        let data = self.data.iter().map(|x| x * s).collect();
        Tensor::from_vec(self.rows, self.cols, data)
    }

    /// Applies `f` element-wise.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let data = self.data.iter().map(|x| f(*x)).collect();
        Tensor::from_vec(self.rows, self.cols, data)
    }

    /// Element-wise product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "hadamard shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a * b)
            .collect();
        Tensor::from_vec(self.rows, self.cols, data)
    }

    /// Column sums (used for bias gradients): a `1 × cols` tensor.
    pub fn col_sums(&self) -> Tensor {
        let mut out = Tensor::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Adds a `1 × cols` row vector to every row.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 × self.cols`.
    pub fn add_row(&self, bias: &Tensor) -> Tensor {
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(bias.cols, self.cols, "bias width mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            for c in 0..out.cols {
                out.data[r * out.cols + c] += bias.data[c];
            }
        }
        out
    }

    /// Sum of squared elements.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// Row-wise numerically stable softmax.
    pub fn softmax_rows(&self) -> Tensor {
        let mut out = self.clone();
        for r in 0..self.rows {
            let row = &mut out.data[r * self.cols..(r + 1) * self.cols];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for x in row.iter_mut() {
                *x = (*x - max).exp();
                sum += *x;
            }
            for x in row.iter_mut() {
                *x /= sum;
            }
        }
        out
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}x{})", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small_known_values() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn transposed_matmuls_agree_with_explicit_transpose() {
        let a = Tensor::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let g = Tensor::from_vec(3, 4, (0..12).map(|i| i as f32).collect());
        // aᵀ·g == transpose(a).matmul(g)
        let mut at = Tensor::zeros(2, 3);
        for r in 0..3 {
            for c in 0..2 {
                at.data_mut()[c * 3 + r] = a.at(r, c);
            }
        }
        assert_eq!(a.matmul_tn(&g), at.matmul(&g));
        // g·aᵀ over matching inner dim.
        let w = Tensor::from_vec(5, 2, (0..10).map(|i| i as f32).collect());
        let x = Tensor::from_vec(3, 2, (0..6).map(|i| i as f32).collect());
        let mut wt = Tensor::zeros(2, 5);
        for r in 0..5 {
            for c in 0..2 {
                wt.data_mut()[c * 5 + r] = w.at(r, c);
            }
        }
        assert_eq!(x.matmul_nt(&w), x.matmul(&wt));
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let b = Tensor::from_vec(2, 2, vec![4., 3., 2., 1.]);
        assert_eq!(a.sub(&b).data(), &[-3., -1., 1., 3.]);
        assert_eq!(a.scale(2.0).data(), &[2., 4., 6., 8.]);
        assert_eq!(a.hadamard(&b).data(), &[4., 6., 6., 4.]);
        assert_eq!(a.map(|x| x * x).data(), &[1., 4., 9., 16.]);
        let mut c = a.clone();
        c.add_assign(&b);
        assert_eq!(c.data(), &[5., 5., 5., 5.]);
        assert_eq!(a.sq_norm(), 30.0);
    }

    #[test]
    fn bias_helpers() {
        let x = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(x.col_sums().data(), &[5., 7., 9.]);
        let b = Tensor::from_vec(1, 3, vec![10., 20., 30.]);
        assert_eq!(x.add_row(&b).data(), &[11., 22., 33., 14., 25., 36.]);
    }

    #[test]
    fn softmax_rows_normalizes() {
        let x = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 0.0, 0.0, 0.0]);
        let s = x.softmax_rows();
        for r in 0..2 {
            let sum: f32 = (0..3).map(|c| s.at(r, c)).sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // Uniform row -> uniform softmax.
        assert!((s.at(1, 0) - 1.0 / 3.0).abs() < 1e-6);
        // Monotone in the logits.
        assert!(s.at(0, 2) > s.at(0, 1) && s.at(0, 1) > s.at(0, 0));
    }

    #[test]
    fn softmax_rows_is_stable_for_large_logits() {
        let x = Tensor::from_vec(1, 2, vec![1000.0, 999.0]);
        let s = x.softmax_rows();
        assert!(s.at(0, 0).is_finite() && s.at(0, 1).is_finite());
        assert!((s.at(0, 0) + s.at(0, 1) - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_checked() {
        Tensor::zeros(2, 3).matmul(&Tensor::zeros(2, 3));
    }

    #[test]
    #[should_panic(expected = "data length mismatch")]
    fn from_vec_length_checked() {
        Tensor::from_vec(2, 2, vec![1.0]);
    }
}
