//! Optimizers with shardable state.
//!
//! The paper's memory analysis (Eq. 10–12) is driven by the *optimizer
//! state*: Adam keeps two momenta plus fp32 master weights — 12 bytes per
//! parameter — and sharding that state across data-parallel ranks is what
//! `DP_PS`/`DP_FS` (ZeRO) are for. All updates here are **element-wise**,
//! which is the property that makes sharding exact: applying the update
//! to a shard with the shard's slice of the state gives bit-identical
//! results to applying it to the full vector.

/// Which optimizer to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OptimizerKind {
    /// Plain SGD: `w ← w − lr·g`. Stateless.
    Sgd {
        /// Learning rate.
        lr: f32,
    },
    /// SGD with momentum: `v ← β·v + g; w ← w − lr·v`.
    Momentum {
        /// Learning rate.
        lr: f32,
        /// Momentum coefficient β.
        beta: f32,
    },
    /// Adam (Kingma & Ba) with bias correction.
    Adam {
        /// Learning rate.
        lr: f32,
        /// First-moment decay β₁.
        beta1: f32,
        /// Second-moment decay β₂.
        beta2: f32,
        /// Numerical-stability ε.
        eps: f32,
    },
}

impl OptimizerKind {
    /// Adam with the conventional hyper-parameters
    /// (β₁ = 0.9, β₂ = 0.999, ε = 1e−8).
    pub fn adam(lr: f32) -> Self {
        OptimizerKind::Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }

    /// Plain SGD.
    pub fn sgd(lr: f32) -> Self {
        OptimizerKind::Sgd { lr }
    }

    /// Initializes the state for `len` parameters.
    pub fn init_state(&self, len: usize) -> OptimizerState {
        match self {
            OptimizerKind::Sgd { .. } => OptimizerState::Sgd,
            OptimizerKind::Momentum { .. } => OptimizerState::Momentum {
                velocity: vec![0.0; len],
            },
            OptimizerKind::Adam { .. } => OptimizerState::Adam {
                m: vec![0.0; len],
                v: vec![0.0; len],
                t: 0,
            },
        }
    }

    /// Bytes of optimizer state per parameter (Adam's 8 = two fp32
    /// momenta; the fp32 master weights are accounted separately in the
    /// paper's 12-byte figure).
    pub fn state_bytes_per_param(&self) -> usize {
        match self {
            OptimizerKind::Sgd { .. } => 0,
            OptimizerKind::Momentum { .. } => 4,
            OptimizerKind::Adam { .. } => 8,
        }
    }

    /// Applies one update step in place.
    ///
    /// # Panics
    ///
    /// Panics if `params`, `grads` and the state disagree on length, or
    /// if the state variant does not match the kind.
    pub fn step(&self, state: &mut OptimizerState, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len(), "params/grads length mismatch");
        match (self, state) {
            (OptimizerKind::Sgd { lr }, OptimizerState::Sgd) => {
                for (p, g) in params.iter_mut().zip(grads) {
                    *p -= lr * g;
                }
            }
            (OptimizerKind::Momentum { lr, beta }, OptimizerState::Momentum { velocity }) => {
                assert_eq!(velocity.len(), params.len(), "state length mismatch");
                for ((p, g), v) in params.iter_mut().zip(grads).zip(velocity.iter_mut()) {
                    *v = beta * *v + g;
                    *p -= lr * *v;
                }
            }
            (
                OptimizerKind::Adam {
                    lr,
                    beta1,
                    beta2,
                    eps,
                },
                OptimizerState::Adam { m, v, t },
            ) => {
                assert_eq!(m.len(), params.len(), "state length mismatch");
                *t += 1;
                let bc1 = 1.0 - beta1.powi(*t);
                let bc2 = 1.0 - beta2.powi(*t);
                for (((p, g), mi), vi) in params
                    .iter_mut()
                    .zip(grads)
                    .zip(m.iter_mut())
                    .zip(v.iter_mut())
                {
                    *mi = beta1 * *mi + (1.0 - beta1) * g;
                    *vi = beta2 * *vi + (1.0 - beta2) * g * g;
                    let m_hat = *mi / bc1;
                    let v_hat = *vi / bc2;
                    *p -= lr * m_hat / (v_hat.sqrt() + eps);
                }
            }
            _ => panic!("optimizer state variant does not match kind"),
        }
    }
}

/// Per-parameter-vector optimizer state (one per stage shard).
#[derive(Debug, Clone, PartialEq)]
pub enum OptimizerState {
    /// No state.
    Sgd,
    /// Momentum buffer.
    Momentum {
        /// The velocity vector.
        velocity: Vec<f32>,
    },
    /// Adam moments and step counter.
    Adam {
        /// First moments.
        m: Vec<f32>,
        /// Second moments.
        v: Vec<f32>,
        /// Step counter (for bias correction).
        t: i32,
    },
}

impl OptimizerState {
    /// Extracts the sub-state for a contiguous shard `range` — the ZeRO
    /// sharding operation. Element-wise optimizers make this exact.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn shard(&self, range: std::ops::Range<usize>) -> OptimizerState {
        match self {
            OptimizerState::Sgd => OptimizerState::Sgd,
            OptimizerState::Momentum { velocity } => OptimizerState::Momentum {
                velocity: velocity[range].to_vec(),
            },
            OptimizerState::Adam { m, v, t } => OptimizerState::Adam {
                m: m[range.clone()].to_vec(),
                v: v[range].to_vec(),
                t: *t,
            },
        }
    }

    /// Returns a copy zero-padded (or truncated) to `len` elements —
    /// used to align state with padded shard boundaries.
    pub fn resized(&self, len: usize) -> OptimizerState {
        let fit = |v: &Vec<f32>| {
            let mut v = v.clone();
            v.resize(len, 0.0);
            v
        };
        match self {
            OptimizerState::Sgd => OptimizerState::Sgd,
            OptimizerState::Momentum { velocity } => OptimizerState::Momentum {
                velocity: fit(velocity),
            },
            OptimizerState::Adam { m, v, t } => OptimizerState::Adam {
                m: fit(m),
                v: fit(v),
                t: *t,
            },
        }
    }

    /// Reassembles a full state from rank-ordered shards (the inverse of
    /// [`OptimizerState::shard`] over a partition).
    ///
    /// # Panics
    ///
    /// Panics on an empty input or mixed variants.
    pub fn concat(shards: &[OptimizerState]) -> OptimizerState {
        let first = shards.first().expect("at least one shard");
        match first {
            OptimizerState::Sgd => OptimizerState::Sgd,
            OptimizerState::Momentum { .. } => {
                let mut velocity = Vec::new();
                for s in shards {
                    match s {
                        OptimizerState::Momentum { velocity: v } => velocity.extend(v),
                        _ => panic!("mixed optimizer state variants"),
                    }
                }
                OptimizerState::Momentum { velocity }
            }
            OptimizerState::Adam { t, .. } => {
                let t = *t;
                let mut m = Vec::new();
                let mut v = Vec::new();
                for s in shards {
                    match s {
                        OptimizerState::Adam {
                            m: ms,
                            v: vs,
                            t: ts,
                        } => {
                            assert_eq!(*ts, t, "shards disagree on step counter");
                            m.extend(ms);
                            v.extend(vs);
                        }
                        _ => panic!("mixed optimizer state variants"),
                    }
                }
                OptimizerState::Adam { m, v, t }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_matches_closed_form() {
        let k = OptimizerKind::sgd(0.1);
        let mut s = k.init_state(2);
        let mut p = vec![1.0, 2.0];
        k.step(&mut s, &mut p, &[10.0, -10.0]);
        assert_eq!(p, vec![0.0, 3.0]);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let k = OptimizerKind::Momentum { lr: 1.0, beta: 0.5 };
        let mut s = k.init_state(1);
        let mut p = vec![0.0];
        k.step(&mut s, &mut p, &[1.0]); // v = 1, p = -1
        k.step(&mut s, &mut p, &[1.0]); // v = 1.5, p = -2.5
        assert_eq!(p, vec![-2.5]);
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // With bias correction, the first Adam step ≈ lr·sign(g).
        let k = OptimizerKind::adam(0.001);
        let mut s = k.init_state(2);
        let mut p = vec![0.0, 0.0];
        k.step(&mut s, &mut p, &[3.0, -0.5]);
        assert!((p[0] + 0.001).abs() < 1e-6, "{p:?}");
        assert!((p[1] - 0.001).abs() < 1e-6, "{p:?}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // Minimize (w − 3)²: Adam must approach 3.
        let k = OptimizerKind::adam(0.1);
        let mut s = k.init_state(1);
        let mut p = vec![0.0];
        for _ in 0..500 {
            let g = 2.0 * (p[0] - 3.0);
            k.step(&mut s, &mut p, &[g]);
        }
        assert!((p[0] - 3.0).abs() < 0.05, "got {}", p[0]);
    }

    #[test]
    fn sharded_update_equals_full_update() {
        // The ZeRO property: per-shard update == slice of full update.
        let k = OptimizerKind::adam(0.01);
        let grads: Vec<f32> = (0..10).map(|i| (i as f32 - 5.0) * 0.3).collect();
        // Full update, two steps.
        let mut full_state = k.init_state(10);
        let mut full = vec![1.0f32; 10];
        k.step(&mut full_state, &mut full, &grads);
        k.step(&mut full_state, &mut full, &grads);
        // Sharded update: two ranks of 5.
        let mut out = Vec::new();
        for r in 0..2 {
            let range = r * 5..(r + 1) * 5;
            let mut st = k.init_state(5);
            let mut p = vec![1.0f32; 5];
            k.step(&mut st, &mut p, &grads[range.clone()]);
            k.step(&mut st, &mut p, &grads[range]);
            out.extend(p);
        }
        assert_eq!(out, full, "elementwise updates shard exactly");
    }

    #[test]
    fn state_shard_extracts_ranges() {
        let k = OptimizerKind::adam(0.01);
        let mut s = k.init_state(4);
        let mut p = vec![0.0; 4];
        k.step(&mut s, &mut p, &[1.0, 2.0, 3.0, 4.0]);
        let shard = s.shard(1..3);
        match (&s, &shard) {
            (OptimizerState::Adam { m, t, .. }, OptimizerState::Adam { m: ms, t: ts, .. }) => {
                assert_eq!(&m[1..3], ms.as_slice());
                assert_eq!(t, ts);
            }
            _ => panic!("wrong variants"),
        }
    }

    #[test]
    fn state_bytes_match_paper_accounting() {
        assert_eq!(OptimizerKind::sgd(0.1).state_bytes_per_param(), 0);
        assert_eq!(OptimizerKind::adam(0.1).state_bytes_per_param(), 8);
    }

    #[test]
    #[should_panic(expected = "variant does not match")]
    fn mismatched_state_rejected() {
        let k = OptimizerKind::adam(0.1);
        let mut s = OptimizerState::Sgd;
        k.step(&mut s, &mut [0.0], &[1.0]);
    }
}
