//! Single-head self-attention with a hand-written backward pass.
//!
//! With this layer a pipeline [`Stage`](crate::layers::Stage) can be a
//! *real transformer block* (attention + MLP), so the schedule-equivalence
//! tests exercise the same layer structure the paper's models have. The
//! convention: a micro-batch tensor of shape `(n, d)` is one sequence of
//! `n` tokens with hidden size `d` (i.e. `S_mb = 1` semantics — the shape
//! the paper's §A.1 activation analysis assumes).

use crate::layers::Layer;
use crate::tensor::Tensor;

/// Single-head self-attention:
/// `Y = softmax(XW_q (XW_k)ᵀ / √d) · XW_v · W_o`.
///
/// All four projections are `d × d`; biases are omitted (wrap the layer
/// between [`crate::layers::Linear`]s for biased variants). Optionally
/// causal (token `i` attends to tokens `≤ i`), as in GPT-style decoders.
#[derive(Debug, Clone)]
pub struct SelfAttention {
    wq: Tensor,
    wk: Tensor,
    wv: Tensor,
    wo: Tensor,
    causal: bool,
}

impl SelfAttention {
    /// Creates an attention layer from explicit projection matrices
    /// (each `d × d`).
    ///
    /// # Panics
    ///
    /// Panics unless all four matrices are square with the same size.
    pub fn new(wq: Tensor, wk: Tensor, wv: Tensor, wo: Tensor, causal: bool) -> Self {
        let d = wq.rows();
        for (name, w) in [("wq", &wq), ("wk", &wk), ("wv", &wv), ("wo", &wo)] {
            assert_eq!(
                (w.rows(), w.cols()),
                (d, d),
                "{name} must be {d}x{d} to match wq"
            );
        }
        SelfAttention {
            wq,
            wk,
            wv,
            wo,
            causal,
        }
    }

    /// Deterministic seeded initialization of a `d × d` attention layer.
    pub fn seeded(d: usize, causal: bool, seed: u64) -> Self {
        let mk = |i: u64| {
            let l = crate::layers::Linear::seeded(d, d, seed.wrapping_add(i));
            // Reuse Linear's seeded weights; drop its bias.
            let mut v = vec![0.0; l.num_params()];
            l.write_params(&mut v);
            Tensor::from_vec(d, d, v[..d * d].to_vec())
        };
        SelfAttention::new(mk(1), mk(2), mk(3), mk(4), causal)
    }

    /// Hidden size `d`.
    pub fn dim(&self) -> usize {
        self.wq.rows()
    }

    /// Attention scores before softmax, with the causal mask applied.
    fn masked_scores(&self, q: &Tensor, k: &Tensor) -> Tensor {
        let d = self.dim() as f32;
        let mut s = q.matmul_nt(k).scale(1.0 / d.sqrt());
        if self.causal {
            let n = s.rows();
            for i in 0..n {
                for j in (i + 1)..n {
                    s.data_mut()[i * n + j] = f32::NEG_INFINITY;
                }
            }
        }
        s
    }
}

impl Layer for SelfAttention {
    fn forward(&self, input: &Tensor) -> Tensor {
        let q = input.matmul(&self.wq);
        let k = input.matmul(&self.wk);
        let v = input.matmul(&self.wv);
        let a = self.masked_scores(&q, &k).softmax_rows();
        a.matmul(&v).matmul(&self.wo)
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn backward(&self, input: &Tensor, grad_out: &Tensor, grads: &mut [f32]) -> Tensor {
        let d = self.dim();
        let scale = 1.0 / (d as f32).sqrt();
        // Recompute the forward intermediates (activation checkpointing).
        let q = input.matmul(&self.wq);
        let k = input.matmul(&self.wk);
        let v = input.matmul(&self.wv);
        let a = self.masked_scores(&q, &k).softmax_rows();
        let z = a.matmul(&v);

        // Y = Z Wo.
        let grad_wo = z.matmul_tn(grad_out);
        let grad_z = grad_out.matmul_nt(&self.wo);
        // Z = A V.
        let grad_a = grad_z.matmul_nt(&v);
        let grad_v = a.matmul_tn(&grad_z);
        // A = softmax(S): dS_ij = A_ij (dA_ij − Σ_k dA_ik A_ik).
        let n = a.rows();
        let mut grad_s = Tensor::zeros(n, n);
        for i in 0..n {
            let mut dot = 0.0;
            for kx in 0..n {
                dot += grad_a.at(i, kx) * a.at(i, kx);
            }
            for j in 0..n {
                grad_s.data_mut()[i * n + j] = a.at(i, j) * (grad_a.at(i, j) - dot);
            }
        }
        // S = Q Kᵀ · scale.
        let grad_q = grad_s.matmul(&k).scale(scale);
        let grad_k = grad_s.matmul_tn(&q);
        let grad_k = {
            // grad_s.matmul_tn(q) computes Sᵀ·Q; scale it.
            grad_k.scale(scale)
        };
        // Projections.
        let grad_wq = input.matmul_tn(&grad_q);
        let grad_wk = input.matmul_tn(&grad_k);
        let grad_wv = input.matmul_tn(&grad_v);

        // Accumulate parameter gradients in [wq, wk, wv, wo] layout.
        let dd = d * d;
        let (gq, rest) = grads.split_at_mut(dd);
        let (gk, rest) = rest.split_at_mut(dd);
        let (gv, go) = rest.split_at_mut(dd);
        for (seg, g) in [
            (gq, &grad_wq),
            (gk, &grad_wk),
            (gv, &grad_wv),
            (go, &grad_wo),
        ] {
            for (a, b) in seg.iter_mut().zip(g.data()) {
                *a += *b;
            }
        }

        // Input gradient: X feeds Q, K and V.
        let mut grad_x = grad_q.matmul_nt(&self.wq);
        grad_x.add_assign(&grad_k.matmul_nt(&self.wk));
        grad_x.add_assign(&grad_v.matmul_nt(&self.wv));
        grad_x
    }

    fn num_params(&self) -> usize {
        4 * self.dim() * self.dim()
    }

    fn write_params(&self, out: &mut [f32]) {
        let dd = self.dim() * self.dim();
        out[0..dd].copy_from_slice(self.wq.data());
        out[dd..2 * dd].copy_from_slice(self.wk.data());
        out[2 * dd..3 * dd].copy_from_slice(self.wv.data());
        out[3 * dd..4 * dd].copy_from_slice(self.wo.data());
    }

    fn read_params(&mut self, src: &[f32]) {
        let dd = self.dim() * self.dim();
        self.wq.data_mut().copy_from_slice(&src[0..dd]);
        self.wk.data_mut().copy_from_slice(&src[dd..2 * dd]);
        self.wv.data_mut().copy_from_slice(&src[2 * dd..3 * dd]);
        self.wo.data_mut().copy_from_slice(&src[3 * dd..4 * dd]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Stage;

    fn demo_input(n: usize, d: usize) -> Tensor {
        Tensor::from_vec(
            n,
            d,
            (0..n * d)
                .map(|i| ((i * 37 % 11) as f32 - 5.0) * 0.1)
                .collect(),
        )
    }

    fn attn_stage(d: usize, causal: bool) -> Stage {
        Stage::new(vec![Box::new(SelfAttention::seeded(d, causal, 3))])
    }

    #[test]
    fn forward_shape_is_preserved() {
        let a = SelfAttention::seeded(6, false, 1);
        let x = demo_input(5, 6);
        let y = a.forward(&x);
        assert_eq!((y.rows(), y.cols()), (5, 6));
    }

    #[test]
    fn causal_mask_blocks_the_future() {
        // With a causal mask, changing a *later* token must not change an
        // earlier token's output.
        let a = SelfAttention::seeded(4, true, 5);
        let x1 = demo_input(4, 4);
        let mut x2 = x1.clone();
        // Perturb the last token only.
        let cols = x2.cols();
        let n = x2.rows();
        for c in 0..cols {
            x2.data_mut()[(n - 1) * cols + c] += 1.0;
        }
        let y1 = a.forward(&x1);
        let y2 = a.forward(&x2);
        for i in 0..n - 1 {
            for c in 0..cols {
                assert_eq!(
                    y1.at(i, c),
                    y2.at(i, c),
                    "token {i} must not see the future"
                );
            }
        }
        // The last token's output does change.
        assert_ne!(y1.at(n - 1, 0), y2.at(n - 1, 0));
    }

    #[test]
    fn non_causal_attends_everywhere() {
        let a = SelfAttention::seeded(4, false, 5);
        let x1 = demo_input(4, 4);
        let mut x2 = x1.clone();
        let cols = x2.cols();
        let n = x2.rows();
        for c in 0..cols {
            x2.data_mut()[(n - 1) * cols + c] += 1.0;
        }
        let y1 = a.forward(&x1);
        let y2 = a.forward(&x2);
        assert_ne!(y1.at(0, 0), y2.at(0, 0), "token 0 should see token n-1");
    }

    #[test]
    fn gradients_match_finite_differences() {
        for causal in [false, true] {
            let stage = attn_stage(4, causal);
            let x = demo_input(3, 4);
            let out = stage.forward(&x);
            let ones = Tensor::from_vec(out.rows(), out.cols(), vec![1.0; out.data().len()]);
            let mut grads = vec![0.0; stage.num_params()];
            let grad_in = stage.backward(&x, &ones, &mut grads);

            let base = stage.param_vector();
            let eps = 1e-3f32;
            for idx in [0usize, 7, base.len() / 2, base.len() - 1] {
                let mut s2 = attn_stage(4, causal);
                let mut plus = base.clone();
                plus[idx] += eps;
                s2.set_param_vector(&plus);
                let fp: f32 = s2.forward(&x).data().iter().sum();
                let mut minus = base.clone();
                minus[idx] -= eps;
                s2.set_param_vector(&minus);
                let fm: f32 = s2.forward(&x).data().iter().sum();
                let numeric = (fp - fm) / (2.0 * eps);
                assert!(
                    (numeric - grads[idx]).abs() < 3e-2 * (1.0 + numeric.abs()),
                    "causal={causal} param {idx}: numeric {numeric} vs {}",
                    grads[idx]
                );
            }
            // Input gradient check on a few coordinates.
            for i in [0usize, 5, 11] {
                let mut xp = x.clone();
                xp.data_mut()[i] += eps;
                let mut xm = x.clone();
                xm.data_mut()[i] -= eps;
                let fp: f32 = stage.forward(&xp).data().iter().sum();
                let fm: f32 = stage.forward(&xm).data().iter().sum();
                let numeric = (fp - fm) / (2.0 * eps);
                assert!(
                    (numeric - grad_in.data()[i]).abs() < 3e-2 * (1.0 + numeric.abs()),
                    "causal={causal} input {i}: numeric {numeric} vs {}",
                    grad_in.data()[i]
                );
            }
        }
    }

    #[test]
    fn param_vector_roundtrips() {
        let a = SelfAttention::seeded(5, false, 9);
        let mut v = vec![0.0; a.num_params()];
        a.write_params(&mut v);
        let mut b = SelfAttention::seeded(5, false, 10);
        b.read_params(&v);
        let mut v2 = vec![0.0; b.num_params()];
        b.write_params(&mut v2);
        assert_eq!(v, v2);
        assert_eq!(a.num_params(), 4 * 25);
    }

    #[test]
    #[should_panic(expected = "must be")]
    fn mismatched_projections_rejected() {
        SelfAttention::new(
            Tensor::zeros(4, 4),
            Tensor::zeros(4, 4),
            Tensor::zeros(3, 3),
            Tensor::zeros(4, 4),
            false,
        );
    }
}
