//! The multi-threaded pipeline executor.
//!
//! One OS thread per (pipeline device, data-parallel replica). Each
//! thread executes its device's [`bfpp_core::Schedule`] action list
//! **verbatim**: forward actions receive activations from the upstream
//! stage over a crossbeam channel, run the stage, and send downstream;
//! backward actions mirror this with gradients. Data parallelism uses the
//! deterministic thread collectives of [`bfpp_collectives::thread`]:
//!
//! * `DP_0` — gradients accumulate locally and are all-reduced once per
//!   stage at the end of the batch;
//! * `DP_PS` — gradients are reduce-scattered, each replica updates its
//!   shard, and the updated weights are all-gathered (ZeRO-2);
//! * `DP_FS` — weights live as shards; before every contiguous
//!   same-(stage, direction) run of the schedule the stage's weights are
//!   all-gathered, and at the end of every backward run the accumulated
//!   gradients are flushed with a reduce-scatter (ZeRO-3, with exactly
//!   the per-schedule repetition the paper analyzes in §4.2 — one
//!   gather/flush pair per run, so breadth-first pays the minimum).
//!
//! # Fault handling
//!
//! Every device thread runs inside a panic-catching harness. A thread
//! that panics, loses a channel peer, or sees a collective fail does not
//! strand the rest of the step:
//!
//! * its channel endpoints drop, so pipeline neighbours blocked on
//!   send/recv fail fast with a typed channel error;
//! * its data-parallel communication group is *poisoned*, so replicas
//!   blocked in a collective return
//!   [`bfpp_collectives::thread::CollectiveError::PeerFailed`] instead of
//!   hanging (with the group's rendezvous deadline as a backstop);
//! * the step as a whole returns a [`TrainError`] identifying the device
//!   and replica where the failure *originated* (injected faults and
//!   panics outrank the secondary channel/collective errors they cause).
//!
//! [`try_run_batch_stateful`] surfaces these errors; [`run_batch`] and
//! [`run_batch_stateful`] keep their infallible signatures and panic on
//! them. [`run_batch_with_retry`] retries a failed step from pristine
//! inputs with bounded exponential backoff, for transient faults
//! (injected via [`FaultPlan`] in tests and resilience experiments).

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use bfpp_collectives::thread::{CollectiveError, CommGroup, CommHandle, PoisonReason};
use bfpp_core::{Direction, Schedule, ScheduleKind};
use bfpp_parallel::{DataParallelism, Placement, StageId};
use bfpp_sim::observe::Counters;
use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::layers::Stage;
use crate::loss::mse;
use crate::optim::{OptimizerKind, OptimizerState};
use crate::tensor::Tensor;

/// Configuration of one pipelined training step.
#[derive(Debug, Clone)]
pub struct TrainSpec {
    /// Pipeline schedule to execute.
    pub kind: ScheduleKind,
    /// Stage placement (defines `N_PP`, `N_loop`).
    pub placement: Placement,
    /// Sequential micro-batches per replica.
    pub n_mb: u32,
    /// Data-parallel replicas.
    pub n_dp: u32,
    /// Sharding level.
    pub dp: DataParallelism,
    /// The optimizer (its state is sharded across replicas under
    /// `DP_PS`/`DP_FS`, exactly as ZeRO shards it).
    pub optimizer: OptimizerKind,
    /// Quantize stage-boundary traffic (activations and their gradients)
    /// through binary16, as the paper's half-precision transfers do. The
    /// parameters and optimizer state stay fp32 (the "mixed precision"
    /// of §A.1).
    pub half_comms: bool,
}

/// The outcome of one pipelined training step.
#[derive(Debug)]
pub struct TrainResult {
    /// Updated stages (replica 0's view; all replicas are asserted
    /// identical by the collectives' determinism).
    pub stages: Vec<Stage>,
    /// Per-micro-batch losses in global order (replica-major).
    pub losses: Vec<f32>,
    /// Final reduced gradients per stage (full length, identical on all
    /// replicas).
    pub gradients: Vec<Vec<f32>>,
    /// Mean loss over the batch.
    pub mean_loss: f32,
}

/// Why a device thread failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureReason {
    /// The thread panicked; the payload message is preserved.
    Panicked(String),
    /// A data-parallel collective failed (peer died or rendezvous timed
    /// out).
    Collective(CollectiveError),
    /// A pipeline stage-boundary channel disconnected (the peer device
    /// thread is gone).
    ChannelClosed {
        /// What the thread was doing when the channel died.
        what: &'static str,
    },
    /// A [`FaultPlan`] fired with [`FaultKind::Error`].
    InjectedFault,
}

impl FailureReason {
    /// Primary reasons are root causes; channel/collective errors are
    /// usually secondary damage radiating from one.
    fn is_primary(&self) -> bool {
        matches!(
            self,
            FailureReason::Panicked(_) | FailureReason::InjectedFault
        )
    }
}

impl fmt::Display for FailureReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureReason::Panicked(msg) => write!(f, "panicked: {msg}"),
            FailureReason::Collective(e) => write!(f, "collective failed: {e}"),
            FailureReason::ChannelClosed { what } => {
                write!(f, "pipeline channel closed while {what}")
            }
            FailureReason::InjectedFault => f.write_str("injected transient fault"),
        }
    }
}

/// A pipelined training step failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrainError {
    /// A device thread failed; the step's partial work was discarded.
    DeviceFailed {
        /// Pipeline device of the failing thread.
        device: u32,
        /// Data-parallel replica of the failing thread.
        replica: u32,
        /// Why it failed.
        reason: FailureReason,
    },
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::DeviceFailed {
                device,
                replica,
                reason,
            } => write!(
                f,
                "pipeline step failed: device {device} (replica {replica}) {reason}"
            ),
        }
    }
}

impl Error for TrainError {}

/// How an injected fault manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The device thread panics (exercises the catch/poison path).
    Panic,
    /// The device thread returns a typed error (exercises graceful
    /// shutdown).
    Error,
}

/// A deterministic fault to inject into one device thread, for tests and
/// resilience experiments. The fault fires at the device's first backward
/// action, once per run attempt, until its budget is exhausted — so a
/// budget of `k` makes the first `k` attempts fail and every later one
/// succeed (a *transient* fault under retry).
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Pipeline device to sabotage.
    pub device: u32,
    /// Data-parallel replica to sabotage.
    pub replica: u32,
    /// How the fault manifests.
    pub kind: FaultKind,
    budget: Arc<AtomicU32>,
}

impl FaultPlan {
    /// A fault on `(device, replica)` that fires on the first
    /// `failing_attempts` run attempts (clones share the budget).
    pub fn transient(device: u32, replica: u32, failing_attempts: u32, kind: FaultKind) -> Self {
        FaultPlan {
            device,
            replica,
            kind,
            budget: Arc::new(AtomicU32::new(failing_attempts)),
        }
    }

    /// Consumes one unit of budget; true if the fault should fire now.
    fn fire(&self) -> bool {
        self.budget
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |b| b.checked_sub(1))
            .is_ok()
    }
}

/// Bounded retry with exponential backoff for [`run_batch_with_retry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Additional attempts after the first failure (0 = fail fast).
    pub max_retries: u32,
    /// Sleep before retry `k` is `backoff * 2^(k-1)`.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 0,
            backoff: Duration::from_millis(5),
        }
    }
}

/// Fault-handling knobs of one pipelined step. Kept separate from
/// [`TrainSpec`] (which describes the *training computation*) so specs
/// stay comparable across runs regardless of harness settings.
#[derive(Debug, Clone, Default)]
pub struct HarnessOptions {
    /// Fault to inject, if any.
    pub fault: Option<FaultPlan>,
    /// Retry policy for [`run_batch_with_retry`].
    pub retry: RetryPolicy,
    /// Rendezvous deadline for the data-parallel collectives; `None`
    /// uses [`bfpp_collectives::thread::DEFAULT_TIMEOUT`].
    pub collective_timeout: Option<Duration>,
}

/// A message crossing a stage boundary.
type Packet = (u32, Tensor);

struct Wiring {
    fwd_send: Vec<Option<Sender<Packet>>>,
    fwd_recv: Vec<Option<Receiver<Packet>>>,
    bwd_send: Vec<Option<Sender<Packet>>>,
    bwd_recv: Vec<Option<Receiver<Packet>>>,
}

/// What one device thread hands back.
struct DeviceOutcome {
    replica: u32,
    /// (stage, updated stage object, final full gradient, advanced
    /// optimizer state — shard-sized under sharded DP).
    stages: Vec<(StageId, Stage, Vec<f32>, OptimizerState)>,
    /// (micro-batch, loss) pairs if this device owns the last stage.
    losses: Vec<(u32, f32)>,
}

/// Runs one training step of `spec` starting from `stages` (the full
/// model, one entry per global stage, replicated to every data-parallel
/// worker internally) on `inputs`/`targets` (`n_dp · n_mb` micro-batches,
/// replica-major).
///
/// # Panics
///
/// Panics if shapes disagree with the spec, or the schedule cannot be
/// generated (e.g. depth-first with `n_mb` not a multiple of `N_PP`),
/// or a device thread fails (see [`try_run_batch_stateful`] for the
/// fallible form — device panics are caught there and surfaced as
/// [`TrainError`]; peers fail fast instead of hanging).
pub fn run_batch(
    spec: &TrainSpec,
    stages: Vec<Stage>,
    inputs: &[Tensor],
    targets: &[Tensor],
) -> TrainResult {
    let states = stages
        .iter()
        .map(|s| spec.optimizer.init_state(s.num_params()))
        .collect();
    run_batch_stateful(spec, stages, states, inputs, targets).0
}

/// Stateful form of [`run_batch`]: carries one full-length optimizer
/// state per stage across steps. Internally the state is distributed
/// exactly as ZeRO distributes it — replicated for `DP_0`, sharded per
/// replica for `DP_PS`/`DP_FS` — and reassembled on return.
///
/// # Panics
///
/// As [`run_batch`], plus if `states` does not hold one state per stage.
pub fn run_batch_stateful(
    spec: &TrainSpec,
    stages: Vec<Stage>,
    states: Vec<OptimizerState>,
    inputs: &[Tensor],
    targets: &[Tensor],
) -> (TrainResult, Vec<OptimizerState>) {
    try_run_batch_stateful(
        spec,
        stages,
        states,
        inputs,
        targets,
        &HarnessOptions::default(),
    )
    .unwrap_or_else(|e| panic!("{e}"))
}

/// As [`run_batch_stateful`] with explicit [`HarnessOptions`], returning
/// [`TrainError`] instead of panicking when a device thread fails: the
/// failing thread's panic is caught, its communication group is poisoned
/// so data-parallel peers unblock, its channels disconnect so pipeline
/// neighbours fail fast, and the error names the device and replica
/// where the failure originated.
///
/// # Errors
///
/// [`TrainError::DeviceFailed`] when any device thread panics, loses a
/// peer, fails a collective, or trips an injected fault.
///
/// # Panics
///
/// Panics on *caller* contract violations: shape mismatches with the
/// spec, an ungenerable schedule, or a `states`/`stages` length mismatch
/// (all detected before any thread spawns).
pub fn try_run_batch_stateful(
    spec: &TrainSpec,
    stages: Vec<Stage>,
    states: Vec<OptimizerState>,
    inputs: &[Tensor],
    targets: &[Tensor],
    harness: &HarnessOptions,
) -> Result<(TrainResult, Vec<OptimizerState>), TrainError> {
    let n_stage = spec.placement.num_stages();
    assert_eq!(states.len(), stages.len(), "one optimizer state per stage");
    let n_pp = spec.placement.n_pp();
    let n_dp = spec.n_dp;
    assert_eq!(
        stages.len(),
        n_stage as usize,
        "one Stage per placement stage required"
    );
    assert_eq!(
        inputs.len(),
        (n_dp * spec.n_mb) as usize,
        "inputs must hold n_dp * n_mb micro-batches"
    );
    assert_eq!(inputs.len(), targets.len(), "inputs/targets mismatch");

    let schedule = Schedule::generate(spec.kind, spec.placement, spec.n_mb)
        .expect("schedule must be generable for the spec");
    schedule.validate().expect("generated schedules are valid");

    // Per-pipeline-device communication groups across replicas.
    let comm_timeout = harness
        .collective_timeout
        .unwrap_or(bfpp_collectives::thread::DEFAULT_TIMEOUT);
    let mut comms: Vec<Vec<CommHandle>> = (0..n_pp)
        .map(|_| CommGroup::with_timeout(n_dp as usize, comm_timeout))
        .collect();

    // Channels per replica per boundary.
    let mut wirings: Vec<Wiring> = Vec::with_capacity(n_dp as usize);
    for _ in 0..n_dp {
        let mut w = Wiring {
            fwd_send: Vec::new(),
            fwd_recv: Vec::new(),
            bwd_send: Vec::new(),
            bwd_recv: Vec::new(),
        };
        for _ in 0..n_stage.saturating_sub(1) {
            let (fs, fr) = unbounded();
            let (bs, br) = unbounded();
            w.fwd_send.push(Some(fs));
            w.fwd_recv.push(Some(fr));
            w.bwd_send.push(Some(bs));
            w.bwd_recv.push(Some(br));
        }
        wirings.push(w);
    }

    // (device, replica, what the thread produced), in spawn order.
    let mut results: Vec<(u32, u32, Result<DeviceOutcome, FailureReason>)> = Vec::new();
    thread::scope(|scope| {
        let mut handles = Vec::new();
        for r in 0..n_dp {
            for d in 0..n_pp {
                let my_stages: Vec<(StageId, Stage)> = spec
                    .placement
                    .stages_of_device(d)
                    .into_iter()
                    .map(|s| (s, stages[s.0 as usize].clone()))
                    .collect();
                // Distribute optimizer state: replicated under DP_0,
                // rank-sharded under DP_PS/DP_FS (the ZeRO layout).
                let my_states: Vec<OptimizerState> = my_stages
                    .iter()
                    .map(|(sid, stage)| {
                        let full = &states[sid.0 as usize];
                        if spec.dp == DataParallelism::Unsharded || n_dp == 1 {
                            full.clone()
                        } else {
                            let sl = stage.num_params().div_ceil(n_dp as usize);
                            full.resized(sl * n_dp as usize)
                                .shard(r as usize * sl..(r as usize + 1) * sl)
                        }
                    })
                    .collect();
                let comm = comms[d as usize].remove(0);
                // Hand each thread only the channel endpoints it actually
                // uses (moved out, not cloned): if a peer dies, its
                // endpoints drop, the channel disconnects, and blocked
                // threads fail fast instead of deadlocking.
                let owns = |s: u32| spec.placement.device_of_stage(StageId(s)) == d;
                let wiring = &mut wirings[r as usize];
                let n_bounds = wiring.fwd_send.len();
                let mut fwd_send: Vec<Option<Sender<Packet>>> = vec![None; n_bounds];
                let mut bwd_recv: Vec<Option<Receiver<Packet>>> = vec![None; n_bounds];
                let mut fwd_recv: Vec<Option<Receiver<Packet>>> = vec![None; n_bounds];
                let mut bwd_send: Vec<Option<Sender<Packet>>> = vec![None; n_bounds];
                for b in 0..n_bounds as u32 {
                    // Boundary b sits between stage b and stage b+1.
                    if owns(b) {
                        fwd_send[b as usize] = wiring.fwd_send[b as usize].take();
                        bwd_recv[b as usize] = wiring.bwd_recv[b as usize].take();
                    }
                    if owns(b + 1) {
                        fwd_recv[b as usize] = wiring.fwd_recv[b as usize].take();
                        bwd_send[b as usize] = wiring.bwd_send[b as usize].take();
                    }
                }
                let my_inputs: Vec<Tensor> =
                    inputs[(r * spec.n_mb) as usize..((r + 1) * spec.n_mb) as usize].to_vec();
                let my_targets: Vec<Tensor> =
                    targets[(r * spec.n_mb) as usize..((r + 1) * spec.n_mb) as usize].to_vec();
                let schedule = &schedule;
                let spec = spec.clone();
                let fault = harness.fault.clone();
                handles.push((
                    d,
                    r,
                    scope.spawn(move || {
                        // Catch panics so one bad device cannot tear the whole
                        // process down, then poison its collective group so
                        // replicas blocked in a rendezvous unblock. Channel
                        // endpoints are owned by `device_main`, so either exit
                        // path drops them and pipeline neighbours fail fast.
                        let caught = catch_unwind(AssertUnwindSafe(|| {
                            device_main(
                                &spec,
                                schedule,
                                d,
                                r,
                                my_stages,
                                my_states,
                                &comm,
                                fwd_send,
                                fwd_recv,
                                bwd_send,
                                bwd_recv,
                                my_inputs,
                                my_targets,
                                fault.as_ref(),
                            )
                        }));
                        match caught {
                            Ok(Ok(outcome)) => Ok(outcome),
                            Ok(Err(reason)) => {
                                comm.poison(PoisonReason::Shutdown);
                                Err(reason)
                            }
                            Err(payload) => {
                                comm.poison(PoisonReason::Panicked);
                                Err(FailureReason::Panicked(panic_message(payload.as_ref())))
                            }
                        }
                    }),
                ));
            }
        }
        for (d, r, h) in handles {
            // `join` only fails if the harness itself panicked (the device
            // body is behind `catch_unwind`); fold that into a failure too.
            let res = h.join().unwrap_or_else(|payload| {
                Err(FailureReason::Panicked(panic_message(payload.as_ref())))
            });
            results.push((d, r, res));
        }
    });

    let mut outcomes: Vec<DeviceOutcome> = Vec::with_capacity(results.len());
    let mut failures: Vec<(u32, u32, FailureReason)> = Vec::new();
    for (d, r, res) in results {
        match res {
            Ok(o) => outcomes.push(o),
            Err(reason) => failures.push((d, r, reason)),
        }
    }
    if !failures.is_empty() {
        // Report the root cause: a panic or injected fault outranks the
        // channel/collective errors it radiates to the other threads.
        // Ties break by spawn order.
        let idx = failures
            .iter()
            .position(|(_, _, reason)| reason.is_primary())
            .unwrap_or(0);
        let (device, replica, reason) = failures.swap_remove(idx);
        return Err(TrainError::DeviceFailed {
            device,
            replica,
            reason,
        });
    }

    let stage_sizes: Vec<usize> = stages.iter().map(Stage::num_params).collect();
    Ok(assemble(spec, stages.len(), &stage_sizes, outcomes))
}

/// Retries [`try_run_batch_stateful`] per `harness.retry`, restarting
/// each attempt from the pristine `stages`/`states` the caller passed —
/// so a step that eventually succeeds is bit-identical to one that never
/// failed. Sleeps `backoff * 2^(k-1)` before retry `k`.
///
/// # Errors
///
/// The last attempt's [`TrainError`] once retries are exhausted.
pub fn run_batch_with_retry(
    spec: &TrainSpec,
    stages: &[Stage],
    states: &[OptimizerState],
    inputs: &[Tensor],
    targets: &[Tensor],
    harness: &HarnessOptions,
) -> Result<(TrainResult, Vec<OptimizerState>), TrainError> {
    run_batch_with_retry_instrumented(
        spec,
        stages,
        states,
        inputs,
        targets,
        harness,
        &mut Counters::new(),
    )
}

/// [`run_batch_with_retry`], recording what the harness did into
/// `counters`: `attempts` (total tries), `retries` (tries after a
/// failure), per-root-cause failure counts (`failures.<kind>`), and the
/// `attempt` / `backoff` wall-clock spans. Counters are only ever added
/// to, so one registry can instrument a whole run of steps.
///
/// # Errors
///
/// As [`run_batch_with_retry`].
#[allow(clippy::too_many_arguments)]
pub fn run_batch_with_retry_instrumented(
    spec: &TrainSpec,
    stages: &[Stage],
    states: &[OptimizerState],
    inputs: &[Tensor],
    targets: &[Tensor],
    harness: &HarnessOptions,
    counters: &mut Counters,
) -> Result<(TrainResult, Vec<OptimizerState>), TrainError> {
    let mut attempt = 0u32;
    loop {
        counters.incr("attempts");
        let result = counters.time("attempt", || {
            try_run_batch_stateful(
                spec,
                stages.to_vec(),
                states.to_vec(),
                inputs,
                targets,
                harness,
            )
        });
        match result {
            Ok(out) => return Ok(out),
            Err(e) if attempt < harness.retry.max_retries => {
                counters.incr(&failure_counter(&e));
                counters.incr("retries");
                attempt += 1;
                let exp = 1u32 << (attempt - 1).min(16);
                counters.time("backoff", || {
                    thread::sleep(harness.retry.backoff.saturating_mul(exp));
                });
            }
            Err(e) => {
                counters.incr(&failure_counter(&e));
                return Err(e);
            }
        }
    }
}

/// Counter name for a failed attempt, keyed by the root cause so a sweep
/// can distinguish injected faults from timeouts from genuine panics.
fn failure_counter(e: &TrainError) -> String {
    let kind = match e {
        TrainError::DeviceFailed { reason, .. } => match reason {
            FailureReason::InjectedFault => "injected",
            FailureReason::Panicked(_) => "panicked",
            FailureReason::Collective(_) => "collective",
            FailureReason::ChannelClosed { .. } => "channel",
        },
    };
    format!("failures.{kind}")
}

/// Best-effort text of a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn assemble(
    spec: &TrainSpec,
    n_stage: usize,
    stage_sizes: &[usize],
    outcomes: Vec<DeviceOutcome>,
) -> (TrainResult, Vec<OptimizerState>) {
    let mut stages: Vec<Option<Stage>> = (0..n_stage).map(|_| None).collect();
    let mut gradients: Vec<Vec<f32>> = vec![Vec::new(); n_stage];
    let mut losses: Vec<(u32, u32, f32)> = Vec::new();
    // Per stage, per replica: the returned optimizer state shard.
    let mut state_shards: Vec<Vec<Option<OptimizerState>>> = (0..n_stage)
        .map(|_| vec![None; spec.n_dp as usize])
        .collect();
    for o in outcomes {
        for (sid, stage, grad, state) in o.stages {
            state_shards[sid.0 as usize][o.replica as usize] = Some(state);
            if o.replica == 0 {
                stages[sid.0 as usize] = Some(stage);
                gradients[sid.0 as usize] = grad;
            }
        }
        for (mb, l) in o.losses {
            losses.push((o.replica, mb, l));
        }
    }
    let states: Vec<OptimizerState> = state_shards
        .into_iter()
        .enumerate()
        .map(|(si, shards)| {
            let shards: Vec<OptimizerState> = shards
                .into_iter()
                .map(|s| s.expect("state returned"))
                .collect();
            if spec.dp == DataParallelism::Unsharded || spec.n_dp == 1 {
                // Replicated: all identical; keep replica 0's.
                shards.into_iter().next().expect("replica 0")
            } else {
                OptimizerState::concat(&shards).resized(stage_sizes[si])
            }
        })
        .collect();
    losses.sort_by_key(|&(r, mb, _)| (r, mb));
    let loss_values: Vec<f32> = losses.iter().map(|&(_, _, l)| l).collect();
    let mean_loss = loss_values.iter().sum::<f32>() / loss_values.len().max(1) as f32;
    assert_eq!(
        loss_values.len(),
        (spec.n_dp * spec.n_mb) as usize,
        "every micro-batch must report a loss"
    );
    (
        TrainResult {
            stages: stages
                .into_iter()
                .map(|s| s.expect("every stage reassembled"))
                .collect(),
            losses: loss_values,
            gradients,
            mean_loss,
        },
        states,
    )
}

/// Pads `v` to a multiple of `n` with zeros.
fn padded(v: &[f32], n: usize) -> Vec<f32> {
    let len = v.len().div_ceil(n) * n;
    let mut out = v.to_vec();
    out.resize(len, 0.0);
    out
}

#[allow(clippy::too_many_arguments)]
fn device_main(
    spec: &TrainSpec,
    schedule: &Schedule,
    device: u32,
    replica: u32,
    mut my_stages: Vec<(StageId, Stage)>,
    mut my_states: Vec<OptimizerState>,
    comm: &CommHandle,
    fwd_send: Vec<Option<Sender<Packet>>>,
    fwd_recv: Vec<Option<Receiver<Packet>>>,
    bwd_send: Vec<Option<Sender<Packet>>>,
    bwd_recv: Vec<Option<Receiver<Packet>>>,
    inputs: Vec<Tensor>,
    targets: Vec<Tensor>,
    fault: Option<&FaultPlan>,
) -> Result<DeviceOutcome, FailureReason> {
    let n_stage = spec.placement.num_stages();
    let n_dp = spec.n_dp as usize;
    let use_fs = spec.dp == DataParallelism::FullySharded;
    let last_stage = StageId(n_stage - 1);

    let stage_index: HashMap<StageId, usize> = my_stages
        .iter()
        .enumerate()
        .map(|(i, (sid, _))| (*sid, i))
        .collect();

    // Gradient accumulators: "pending" holds contributions not yet
    // flushed (FS flushes per backward run; others flush once at the end).
    let mut pending: Vec<Vec<f32>> = my_stages
        .iter()
        .map(|(_, s)| vec![0.0; s.num_params()])
        .collect();
    // FS shards of parameters and of reduced gradients.
    let shard_len: Vec<usize> = my_stages
        .iter()
        .map(|(_, s)| s.num_params().div_ceil(n_dp))
        .collect();
    let mut param_shard: Vec<Vec<f32>> = Vec::with_capacity(my_stages.len());
    let mut grad_shard: Vec<Vec<f32>> = Vec::with_capacity(my_stages.len());
    for (i, (_, s)) in my_stages.iter().enumerate() {
        if use_fs {
            let full = padded(&s.param_vector(), n_dp);
            let r = replica as usize;
            param_shard.push(full[r * shard_len[i]..(r + 1) * shard_len[i]].to_vec());
        } else {
            param_shard.push(Vec::new());
        }
        grad_shard.push(vec![0.0; shard_len[i]]);
    }

    // Stashes: stage inputs (for backward recomputation) and last-stage
    // predictions (for the loss).
    let mut input_stash: HashMap<(u32, StageId), Tensor> = HashMap::new();
    let mut pred_stash: HashMap<u32, Tensor> = HashMap::new();
    let mut losses: Vec<(u32, f32)> = Vec::new();

    // Precompute run boundaries for the FS gather/flush protocol.
    let runs = schedule.stage_runs(device);
    let actions = schedule.device_actions(device);
    let mut run_start: HashMap<usize, usize> = HashMap::new();
    let mut run_end: HashMap<usize, usize> = HashMap::new();
    for (k, r) in runs.iter().enumerate() {
        run_start.insert(r.start, k);
        run_end.insert(r.start + r.len - 1, k);
    }

    for (i, a) in actions.iter().enumerate() {
        let si = stage_index[&a.stage];

        // FS: reconstruct this run's weights from the shards.
        if use_fs && run_start.contains_key(&i) {
            let full = comm
                .try_all_gather(&param_shard[si])
                .map_err(FailureReason::Collective)?;
            let n = my_stages[si].1.num_params();
            my_stages[si].1.set_param_vector(&full[..n]);
        }

        match a.dir {
            Direction::Forward => {
                let input = if a.stage.0 == 0 {
                    inputs[a.microbatch as usize].clone()
                } else {
                    let rx = fwd_recv[(a.stage.0 - 1) as usize]
                        .as_ref()
                        .expect("boundary channel exists");
                    let (mb, tensor) = rx.recv().map_err(|_| FailureReason::ChannelClosed {
                        what: "receiving forward activations",
                    })?;
                    assert_eq!(mb, a.microbatch, "forward packet order mismatch");
                    tensor
                };
                let out = my_stages[si].1.forward(&input);
                input_stash.insert((a.microbatch, a.stage), input);
                if a.stage == last_stage {
                    pred_stash.insert(a.microbatch, out);
                } else {
                    let mut out = out;
                    if spec.half_comms {
                        crate::half::quantize_slice(out.data_mut());
                    }
                    fwd_send[a.stage.0 as usize]
                        .as_ref()
                        .expect("boundary channel exists")
                        .send((a.microbatch, out))
                        .map_err(|_| FailureReason::ChannelClosed {
                            what: "sending forward activations",
                        })?;
                }
            }
            Direction::Backward => {
                if let Some(plan) = fault {
                    if plan.device == device && plan.replica == replica && plan.fire() {
                        match plan.kind {
                            FaultKind::Panic => {
                                panic!("injected fault: device {device} replica {replica}")
                            }
                            FaultKind::Error => return Err(FailureReason::InjectedFault),
                        }
                    }
                }
                let grad_out = if a.stage == last_stage {
                    let pred = pred_stash.remove(&a.microbatch).expect("forward ran");
                    let (loss, grad) = mse(&pred, &targets[a.microbatch as usize]);
                    losses.push((a.microbatch, loss));
                    grad
                } else {
                    let rx = bwd_recv[a.stage.0 as usize]
                        .as_ref()
                        .expect("boundary channel exists");
                    let (mb, tensor) = rx.recv().map_err(|_| FailureReason::ChannelClosed {
                        what: "receiving backward gradients",
                    })?;
                    assert_eq!(mb, a.microbatch, "backward packet order mismatch");
                    tensor
                };
                let input = input_stash
                    .remove(&(a.microbatch, a.stage))
                    .expect("forward stashed its input");
                let grad_in = my_stages[si]
                    .1
                    .backward(&input, &grad_out, &mut pending[si]);
                if a.stage.0 > 0 {
                    let mut grad_in = grad_in;
                    if spec.half_comms {
                        crate::half::quantize_slice(grad_in.data_mut());
                    }
                    bwd_send[(a.stage.0 - 1) as usize]
                        .as_ref()
                        .expect("boundary channel exists")
                        .send((a.microbatch, grad_in))
                        .map_err(|_| FailureReason::ChannelClosed {
                            what: "sending backward gradients",
                        })?;
                }
            }
        }

        // FS: flush gradients when a backward run ends (the stage's
        // buffers are about to be evicted).
        if use_fs && a.dir == Direction::Backward && run_end.contains_key(&i) {
            let flat = padded(&pending[si], n_dp);
            let shard = comm
                .try_reduce_scatter(&flat)
                .map_err(FailureReason::Collective)?;
            for (g, x) in grad_shard[si].iter_mut().zip(&shard) {
                *g += *x;
            }
            for p in pending[si].iter_mut() {
                *p = 0.0;
            }
        }
    }

    // Finalize: reduce (if not already), update, and report. Stages are
    // visited in ascending id so every replica issues the collectives in
    // the same order.
    let mut order: Vec<usize> = (0..my_stages.len()).collect();
    order.sort_by_key(|&i| my_stages[i].0);
    let mut results: Vec<(StageId, Stage, Vec<f32>, OptimizerState)> =
        Vec::with_capacity(my_stages.len());
    for i in order {
        let n = my_stages[i].1.num_params();
        let full_grad: Vec<f32> = match spec.dp {
            DataParallelism::Unsharded => {
                let mut g = pending[i].clone();
                comm.try_all_reduce(&mut g)
                    .map_err(FailureReason::Collective)?;
                let mut p = my_stages[i].1.param_vector();
                spec.optimizer.step(&mut my_states[i], &mut p, &g);
                my_stages[i].1.set_param_vector(&p);
                g
            }
            DataParallelism::PartiallySharded => {
                let flat = padded(&pending[i], n_dp);
                let g_shard = comm
                    .try_reduce_scatter(&flat)
                    .map_err(FailureReason::Collective)?;
                let p_full = padded(&my_stages[i].1.param_vector(), n_dp);
                let r = replica as usize;
                let mut p_shard = p_full[r * shard_len[i]..(r + 1) * shard_len[i]].to_vec();
                spec.optimizer
                    .step(&mut my_states[i], &mut p_shard, &g_shard);
                let p_new = comm
                    .try_all_gather(&p_shard)
                    .map_err(FailureReason::Collective)?;
                my_stages[i].1.set_param_vector(&p_new[..n]);
                let mut g = comm
                    .try_all_gather(&g_shard)
                    .map_err(FailureReason::Collective)?;
                g.truncate(n);
                g
            }
            DataParallelism::FullySharded => {
                spec.optimizer
                    .step(&mut my_states[i], &mut param_shard[i], &grad_shard[i]);
                let p_new = comm
                    .try_all_gather(&param_shard[i])
                    .map_err(FailureReason::Collective)?;
                my_stages[i].1.set_param_vector(&p_new[..n]);
                let mut g = comm
                    .try_all_gather(&grad_shard[i])
                    .map_err(FailureReason::Collective)?;
                g.truncate(n);
                g
            }
        };
        results.push((
            my_stages[i].0,
            my_stages[i].1.clone(),
            full_grad,
            my_states[i].clone(),
        ));
    }

    Ok(DeviceOutcome {
        replica,
        stages: results,
        losses,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_mlp_stages, synthetic_batch};
    use crate::serial::run_serial;

    use crate::optim::OptimizerKind;

    fn spec(
        kind: ScheduleKind,
        placement: Placement,
        n_mb: u32,
        n_dp: u32,
        dp: DataParallelism,
    ) -> TrainSpec {
        TrainSpec {
            kind,
            placement,
            n_mb,
            n_dp,
            dp,
            optimizer: OptimizerKind::sgd(0.05),
            half_comms: false,
        }
    }

    fn setup(n_stage: u32, n_mb: u32, n_dp: u32) -> (Vec<Stage>, Vec<Tensor>, Vec<Tensor>) {
        let stages = build_mlp_stages(6, 10, 3, n_stage, 77);
        let (inputs, targets) = synthetic_batch(6, 3, n_dp * n_mb, 4, 123);
        (stages, inputs, targets)
    }

    fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
    }

    #[test]
    fn breadth_first_matches_serial_bitwise_dp0() {
        let (stages, inputs, targets) = setup(4, 4, 2);
        let serial = run_serial(stages.clone(), &inputs, &targets, 2, 0.05);
        let s = spec(
            ScheduleKind::BreadthFirst,
            Placement::looping(2, 2),
            4,
            2,
            DataParallelism::Unsharded,
        );
        let piped = run_batch(&s, stages, &inputs, &targets);
        assert_eq!(piped.losses, serial.losses, "losses must match exactly");
        for (sp, ss) in piped.stages.iter().zip(&serial.stages) {
            assert_eq!(
                sp.param_vector(),
                ss.param_vector(),
                "DP_0 weights must be bit-identical to serial"
            );
        }
        for (gp, gs) in piped.gradients.iter().zip(&serial.gradients) {
            assert_eq!(gp, gs, "DP_0 gradients must be bit-identical");
        }
    }

    #[test]
    fn all_schedules_agree_bitwise_under_dp0() {
        let (stages, inputs, targets) = setup(4, 8, 2);
        let looped = Placement::looping(2, 2);
        let linear = Placement::linear(2);
        let run = |kind: ScheduleKind, placement: Placement| {
            run_batch(
                &spec(kind, placement, 8, 2, DataParallelism::Unsharded),
                // Rebuild: stages are consumed per run.
                build_mlp_stages(6, 10, 3, placement.num_stages(), 77),
                &inputs,
                &targets,
            )
        };
        let _ = &stages;
        let bf = run(ScheduleKind::BreadthFirst, looped);
        let df = run(ScheduleKind::DepthFirst, looped);
        assert_eq!(bf.losses, df.losses);
        for (a, b) in bf.gradients.iter().zip(&df.gradients) {
            assert_eq!(a, b, "BF and DF gradients must be bit-identical");
        }
        // Linear placements have a different stage decomposition (2
        // stages), so compare GPipe vs 1F1B against each other.
        let gp = run(ScheduleKind::GPipe, linear);
        let ofob = run(ScheduleKind::OneFOneB, linear);
        assert_eq!(gp.losses, ofob.losses);
        for (a, b) in gp.gradients.iter().zip(&ofob.gradients) {
            assert_eq!(a, b, "GPipe and 1F1B gradients must be bit-identical");
        }
    }

    #[test]
    fn sharding_levels_agree_with_serial() {
        let (stages, inputs, targets) = setup(4, 4, 2);
        let serial = run_serial(stages.clone(), &inputs, &targets, 2, 0.05);
        for dp in DataParallelism::ALL {
            let s = spec(
                ScheduleKind::BreadthFirst,
                Placement::looping(2, 2),
                4,
                2,
                dp,
            );
            let piped = run_batch(&s, stages.clone(), &inputs, &targets);
            assert_eq!(piped.losses, serial.losses, "{dp}: losses");
            for (k, (sp, ss)) in piped.stages.iter().zip(&serial.stages).enumerate() {
                let diff = max_abs_diff(&sp.param_vector(), &ss.param_vector());
                assert!(
                    diff < 1e-5,
                    "{dp}: stage {k} weights diverge from serial by {diff}"
                );
            }
        }
    }

    #[test]
    fn fs_with_fragmented_schedule_still_correct() {
        // 1F1B + DP_FS fragments into per-micro-batch gather/flush pairs —
        // the expensive case the paper's Eq. (21) describes. It must still
        // be *correct*.
        let (stages, inputs, targets) = setup(2, 6, 2);
        let serial = run_serial(stages.clone(), &inputs, &targets, 2, 0.05);
        let s = spec(
            ScheduleKind::OneFOneB,
            Placement::linear(2),
            6,
            2,
            DataParallelism::FullySharded,
        );
        let piped = run_batch(&s, stages, &inputs, &targets);
        assert_eq!(piped.losses, serial.losses);
        for (sp, ss) in piped.stages.iter().zip(&serial.stages) {
            let diff = max_abs_diff(&sp.param_vector(), &ss.param_vector());
            assert!(diff < 1e-4, "diverged by {diff}");
        }
    }

    #[test]
    fn single_replica_single_device_degenerates_to_serial() {
        let (stages, inputs, targets) = setup(1, 3, 1);
        let serial = run_serial(stages.clone(), &inputs, &targets, 1, 0.05);
        let s = spec(
            ScheduleKind::GPipe,
            Placement::linear(1),
            3,
            1,
            DataParallelism::Unsharded,
        );
        let piped = run_batch(&s, stages, &inputs, &targets);
        assert_eq!(piped.losses, serial.losses);
        for (sp, ss) in piped.stages.iter().zip(&serial.stages) {
            assert_eq!(sp.param_vector(), ss.param_vector());
        }
    }

    #[test]
    fn training_reduces_loss_over_steps() {
        let mut stages = build_mlp_stages(6, 10, 3, 4, 9);
        let (inputs, targets) = synthetic_batch(6, 3, 8, 4, 55);
        let s = spec(
            ScheduleKind::BreadthFirst,
            Placement::looping(2, 2),
            4,
            2,
            DataParallelism::FullySharded,
        );
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..100 {
            let r = run_batch(&s, stages, &inputs, &targets);
            stages = r.stages;
            first.get_or_insert(r.mean_loss);
            last = r.mean_loss;
        }
        let first = first.unwrap();
        assert!(
            last < 0.7 * first,
            "training must make progress: {first} -> {last}"
        );
    }

    #[test]
    #[should_panic(expected = "n_dp * n_mb")]
    fn wrong_batch_count_rejected() {
        let (stages, inputs, targets) = setup(2, 4, 2);
        let s = spec(
            ScheduleKind::GPipe,
            Placement::linear(2),
            4,
            4, // wrong: inputs sized for n_dp = 2
            DataParallelism::Unsharded,
        );
        run_batch(&s, stages, &inputs, &targets);
    }

    #[test]
    fn half_precision_comms_stay_close_to_fp32() {
        // Quantizing boundary traffic through binary16 perturbs training
        // only within f16 rounding error — the property that makes the
        // paper's 2-byte transfers viable.
        let (stages, inputs, targets) = setup(4, 4, 2);
        let mk = |half_comms| TrainSpec {
            kind: ScheduleKind::BreadthFirst,
            placement: Placement::looping(2, 2),
            n_mb: 4,
            n_dp: 2,
            dp: DataParallelism::Unsharded,
            optimizer: OptimizerKind::sgd(0.05),
            half_comms,
        };
        let full = run_batch(&mk(false), stages.clone(), &inputs, &targets);
        let half = run_batch(&mk(true), stages, &inputs, &targets);
        // Losses differ slightly but not wildly.
        for (a, b) in full.losses.iter().zip(&half.losses) {
            assert!((a - b).abs() < 2e-3 * (1.0 + a.abs()), "{a} vs {b}");
        }
        // Weights stay close after one step.
        let diff = full
            .stages
            .iter()
            .zip(&half.stages)
            .map(|(x, y)| max_abs_diff(&x.param_vector(), &y.param_vector()))
            .fold(0.0f32, f32::max);
        assert!(diff < 1e-3, "half comms shifted weights by {diff}");
        assert!(diff > 0.0, "quantization should be observable at all");
    }

    #[test]
    fn adam_with_sharded_state_matches_serial() {
        // Three stateful Adam steps: the pipelined executor shards the
        // optimizer state across replicas (ZeRO) and must still track the
        // serial full-state reference.
        use crate::optim::{OptimizerKind, OptimizerState};
        use crate::serial::run_serial_stateful;
        let (mut piped_stages, inputs, targets) = setup(4, 4, 2);
        let mut serial_stages = piped_stages.clone();
        let kind = OptimizerKind::adam(0.01);
        let mut piped_states: Vec<OptimizerState> = piped_stages
            .iter()
            .map(|s| kind.init_state(s.num_params()))
            .collect();
        let mut serial_states = piped_states.clone();
        let s = TrainSpec {
            kind: ScheduleKind::BreadthFirst,
            placement: Placement::looping(2, 2),
            n_mb: 4,
            n_dp: 2,
            dp: DataParallelism::FullySharded,
            optimizer: kind,
            half_comms: false,
        };
        for step in 0..3 {
            let (p, pst) = run_batch_stateful(&s, piped_stages, piped_states, &inputs, &targets);
            let (ser, sst) =
                run_serial_stateful(serial_stages, &inputs, &targets, 2, kind, serial_states);
            assert_eq!(p.losses, ser.losses, "step {step}: losses");
            piped_stages = p.stages;
            piped_states = pst;
            serial_stages = ser.stages;
            serial_states = sst;
            let diff = piped_stages
                .iter()
                .zip(&serial_stages)
                .map(|(a, b)| max_abs_diff(&a.param_vector(), &b.param_vector()))
                .fold(0.0f32, f32::max);
            assert!(diff < 1e-5, "step {step}: Adam diverged by {diff}");
        }
    }

    #[test]
    fn injected_panic_fails_step_and_names_device() {
        // Device 1 / replica 0 panics at its first backward action. Every
        // other thread must unwind promptly (channel disconnects plus
        // collective poisoning) and the step must report the *origin*,
        // not the secondary damage.
        let (stages, inputs, targets) = setup(2, 4, 2);
        let s = spec(
            ScheduleKind::GPipe,
            Placement::linear(2),
            4,
            2,
            DataParallelism::Unsharded,
        );
        let states: Vec<OptimizerState> = stages
            .iter()
            .map(|st| s.optimizer.init_state(st.num_params()))
            .collect();
        let harness = HarnessOptions {
            fault: Some(FaultPlan::transient(1, 0, 1, FaultKind::Panic)),
            // Backstop so a regression fails the test instead of hanging.
            collective_timeout: Some(std::time::Duration::from_secs(10)),
            ..HarnessOptions::default()
        };
        let err = try_run_batch_stateful(&s, stages, states, &inputs, &targets, &harness)
            .expect_err("injected panic must fail the step");
        match err {
            TrainError::DeviceFailed {
                device,
                replica,
                reason: FailureReason::Panicked(msg),
            } => {
                assert_eq!((device, replica), (1, 0), "must name the origin");
                assert!(msg.contains("injected fault"), "got: {msg}");
            }
            other => panic!("expected the panic as root cause, got {other}"),
        }
    }

    #[test]
    fn injected_error_reports_injected_fault() {
        let (stages, inputs, targets) = setup(2, 2, 1);
        let s = spec(
            ScheduleKind::GPipe,
            Placement::linear(2),
            2,
            1,
            DataParallelism::Unsharded,
        );
        let states: Vec<OptimizerState> = stages
            .iter()
            .map(|st| s.optimizer.init_state(st.num_params()))
            .collect();
        let harness = HarnessOptions {
            fault: Some(FaultPlan::transient(0, 0, 1, FaultKind::Error)),
            ..HarnessOptions::default()
        };
        let err = try_run_batch_stateful(&s, stages, states, &inputs, &targets, &harness)
            .expect_err("injected error must fail the step");
        assert_eq!(
            err,
            TrainError::DeviceFailed {
                device: 0,
                replica: 0,
                reason: FailureReason::InjectedFault,
            }
        );
    }

    #[test]
    fn transient_fault_with_retry_is_bit_identical_to_clean_run() {
        // One failing attempt, then success: because retry restarts from
        // the caller's pristine stages/states, the eventual result must be
        // bit-for-bit what a fault-free run produces.
        let (stages, inputs, targets) = setup(2, 4, 2);
        let s = spec(
            ScheduleKind::OneFOneB,
            Placement::linear(2),
            4,
            2,
            DataParallelism::Unsharded,
        );
        let states: Vec<OptimizerState> = stages
            .iter()
            .map(|st| s.optimizer.init_state(st.num_params()))
            .collect();
        let clean = run_batch_stateful(&s, stages.clone(), states.clone(), &inputs, &targets);
        let harness = HarnessOptions {
            fault: Some(FaultPlan::transient(1, 1, 1, FaultKind::Panic)),
            retry: RetryPolicy {
                max_retries: 2,
                backoff: std::time::Duration::from_millis(1),
            },
            collective_timeout: Some(std::time::Duration::from_secs(10)),
        };
        let (retried, retried_states) =
            run_batch_with_retry(&s, &stages, &states, &inputs, &targets, &harness)
                .expect("one transient failure is within the retry budget");
        assert_eq!(retried.losses, clean.0.losses, "losses must be identical");
        for (a, b) in retried.stages.iter().zip(&clean.0.stages) {
            assert_eq!(
                a.param_vector(),
                b.param_vector(),
                "retried weights must be bit-identical to a clean run"
            );
        }
        for (a, b) in retried.gradients.iter().zip(&clean.0.gradients) {
            assert_eq!(a, b, "retried gradients must be bit-identical");
        }
        assert_eq!(retried_states, clean.1, "optimizer state must match");
    }

    #[test]
    fn instrumented_retry_records_attempts_and_failures() {
        let (stages, inputs, targets) = setup(2, 4, 2);
        let s = spec(
            ScheduleKind::OneFOneB,
            Placement::linear(2),
            4,
            2,
            DataParallelism::Unsharded,
        );
        let states: Vec<OptimizerState> = stages
            .iter()
            .map(|st| s.optimizer.init_state(st.num_params()))
            .collect();
        let harness = HarnessOptions {
            fault: Some(FaultPlan::transient(1, 1, 1, FaultKind::Error)),
            retry: RetryPolicy {
                max_retries: 2,
                backoff: std::time::Duration::from_millis(1),
            },
            collective_timeout: Some(std::time::Duration::from_secs(10)),
        };
        let mut counters = Counters::new();
        run_batch_with_retry_instrumented(
            &s,
            &stages,
            &states,
            &inputs,
            &targets,
            &harness,
            &mut counters,
        )
        .expect("one transient failure is within the retry budget");
        assert_eq!(counters.count("attempts"), 2);
        assert_eq!(counters.count("retries"), 1);
        assert_eq!(counters.count("failures.injected"), 1);
        assert!(counters.span("attempt") > std::time::Duration::ZERO);
        assert!(counters.span("backoff") >= std::time::Duration::from_millis(1));
    }

    #[test]
    fn retries_exhausted_surfaces_the_error() {
        let (stages, inputs, targets) = setup(2, 2, 1);
        let s = spec(
            ScheduleKind::GPipe,
            Placement::linear(2),
            2,
            1,
            DataParallelism::Unsharded,
        );
        let states: Vec<OptimizerState> = stages
            .iter()
            .map(|st| s.optimizer.init_state(st.num_params()))
            .collect();
        let harness = HarnessOptions {
            // Fails 5 attempts; only 1 retry allowed (2 attempts total).
            fault: Some(FaultPlan::transient(0, 0, 5, FaultKind::Error)),
            retry: RetryPolicy {
                max_retries: 1,
                backoff: std::time::Duration::from_millis(1),
            },
            ..HarnessOptions::default()
        };
        let err = run_batch_with_retry(&s, &stages, &states, &inputs, &targets, &harness)
            .expect_err("budget outlasts the retries");
        assert!(matches!(
            err,
            TrainError::DeviceFailed {
                reason: FailureReason::InjectedFault,
                ..
            }
        ));
    }

    #[test]
    fn adam_state_reassembles_across_sharding_levels() {
        // The state returned by a sharded run must equal what a DP_0 run
        // keeps (element-wise updates shard exactly).
        use crate::optim::{OptimizerKind, OptimizerState};
        let (stages, inputs, targets) = setup(2, 4, 2);
        let kind = OptimizerKind::adam(0.01);
        let mk_states = |stages: &[Stage]| -> Vec<OptimizerState> {
            stages
                .iter()
                .map(|s| kind.init_state(s.num_params()))
                .collect()
        };
        let base = |dp| TrainSpec {
            kind: ScheduleKind::GPipe,
            placement: Placement::linear(2),
            n_mb: 4,
            n_dp: 2,
            dp,
            optimizer: kind,
            half_comms: false,
        };
        let (_, st_fs) = run_batch_stateful(
            &base(DataParallelism::FullySharded),
            stages.clone(),
            mk_states(&stages),
            &inputs,
            &targets,
        );
        let (_, st_dp0) = run_batch_stateful(
            &base(DataParallelism::Unsharded),
            stages.clone(),
            mk_states(&stages),
            &inputs,
            &targets,
        );
        for (a, b) in st_fs.iter().zip(&st_dp0) {
            match (a, b) {
                (
                    OptimizerState::Adam {
                        m: ma,
                        v: va,
                        t: ta,
                    },
                    OptimizerState::Adam {
                        m: mb,
                        v: vb,
                        t: tb,
                    },
                ) => {
                    assert_eq!(ta, tb);
                    let dm = ma
                        .iter()
                        .zip(mb)
                        .map(|(x, y)| (x - y).abs())
                        .fold(0.0f32, f32::max);
                    let dv = va
                        .iter()
                        .zip(vb)
                        .map(|(x, y)| (x - y).abs())
                        .fold(0.0f32, f32::max);
                    assert!(dm < 1e-6 && dv < 1e-6, "moments differ: {dm} {dv}");
                }
                _ => panic!("expected Adam states"),
            }
        }
    }
}
