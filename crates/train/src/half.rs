//! IEEE 754 binary16 ("f16") emulation.
//!
//! The paper's communication volumes are all half-precision (2 bytes per
//! activation/gradient/weight element). The performance simulator charges
//! those bytes; this module lets the *numeric* substrate reproduce the
//! precision too: [`quantize`] rounds an `f32` through binary16 with
//! round-to-nearest-even, exactly as storing to an `f16` buffer would.
//! No external crates — the conversion is implemented bit-by-bit and
//! verified exhaustively over all 65 536 half patterns.

/// Converts an `f32` to its nearest binary16 bit pattern
/// (round-to-nearest-even; overflow to ±inf; NaN preserved as a quiet
/// NaN).
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let mant = bits & 0x7F_FFFF;

    if exp == 0xFF {
        // Inf or NaN.
        return if mant == 0 {
            sign | 0x7C00
        } else {
            sign | 0x7E00 // quiet NaN
        };
    }

    // Unbiased exponent; f16 bias is 15, f32 bias is 127.
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7C00; // overflow -> inf
    }
    if unbiased >= -14 {
        // Normal f16. Mantissa: 23 -> 10 bits with RNE.
        let half_exp = ((unbiased + 15) as u16) << 10;
        let shift = 13;
        let kept = (mant >> shift) as u16;
        let round_bits = mant & 0x1FFF;
        let halfway = 0x1000;
        let mut out = sign | half_exp | kept;
        if round_bits > halfway || (round_bits == halfway && (kept & 1) == 1) {
            out += 1; // may carry into the exponent: that is correct RNE
        }
        return out;
    }
    if unbiased >= -25 {
        // Subnormal f16: implicit leading 1 becomes explicit.
        let full = mant | 0x80_0000;
        let shift = (-unbiased - 14) + 13;
        let kept = (full >> shift) as u16;
        let round_mask = (1u32 << shift) - 1;
        let round_bits = full & round_mask;
        let halfway = 1u32 << (shift - 1);
        let mut out = sign | kept;
        if round_bits > halfway || (round_bits == halfway && (kept & 1) == 1) {
            out += 1;
        }
        return out;
    }
    sign // underflow to (signed) zero
}

/// Converts a binary16 bit pattern to the `f32` it denotes exactly.
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1F) as u32;
    let mant = (h & 0x3FF) as u32;
    let bits = match (exp, mant) {
        (0, 0) => sign,
        (0, m) => {
            // Subnormal: value = m × 2⁻²⁴. Normalize: with p the highest
            // set bit of m (0..=9), value = 1.x × 2^(p−24), so the f32
            // exponent field is p + 103.
            let p = 31 - m.leading_zeros();
            let exp32 = p + 103;
            let mant32 = (m << (23 - p)) & 0x7F_FFFF;
            sign | (exp32 << 23) | mant32
        }
        (0x1F, 0) => sign | 0x7F80_0000,
        (0x1F, m) => sign | 0x7F80_0000 | (m << 13) | 0x40_0000,
        (e, m) => sign | ((e + 127 - 15) << 23) | (m << 13),
    };
    f32::from_bits(bits)
}

/// Rounds an `f32` through binary16 and back — the value an `f16` buffer
/// would hold.
pub fn quantize(x: f32) -> f32 {
    f16_bits_to_f32(f32_to_f16_bits(x))
}

/// Quantizes a slice in place.
pub fn quantize_slice(xs: &mut [f32]) {
    for x in xs {
        *x = quantize(*x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_integers_roundtrip() {
        for v in [0.0f32, 1.0, -1.0, 2.0, 0.5, 0.25, 1024.0, -2048.0] {
            assert_eq!(quantize(v), v, "{v} is representable in f16");
        }
    }

    #[test]
    fn known_bit_patterns() {
        assert_eq!(f32_to_f16_bits(1.0), 0x3C00);
        assert_eq!(f32_to_f16_bits(-2.0), 0xC000);
        assert_eq!(f32_to_f16_bits(65504.0), 0x7BFF); // f16::MAX
        assert_eq!(f32_to_f16_bits(65536.0), 0x7C00); // overflow -> inf
        assert_eq!(f32_to_f16_bits(f32::INFINITY), 0x7C00);
        assert_eq!(f32_to_f16_bits(-f32::INFINITY), 0xFC00);
        assert_eq!(f32_to_f16_bits(6.1035156e-5), 0x0400); // smallest normal
        assert_eq!(f32_to_f16_bits(5.9604645e-8), 0x0001); // smallest subnormal
        assert_eq!(f32_to_f16_bits(1e-9), 0x0000); // underflow
    }

    #[test]
    fn round_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and 1 + 2^-10:
        // RNE keeps the even mantissa (1.0).
        let halfway = 1.0 + 2.0_f32.powi(-11);
        assert_eq!(f32_to_f16_bits(halfway), 0x3C00);
        // Just above halfway rounds up.
        let above = 1.0 + 2.0_f32.powi(-11) + 2.0_f32.powi(-20);
        assert_eq!(f32_to_f16_bits(above), 0x3C01);
    }

    #[test]
    fn exhaustive_f16_roundtrip() {
        // Every finite half value must decode and re-encode to itself.
        for h in 0u16..=0xFFFF {
            let exp = (h >> 10) & 0x1F;
            let f = f16_bits_to_f32(h);
            if exp == 0x1F {
                if h & 0x3FF == 0 {
                    assert!(f.is_infinite(), "{h:#06x}");
                } else {
                    assert!(f.is_nan(), "{h:#06x}");
                    continue; // NaN payloads need not roundtrip exactly
                }
            }
            if !f.is_nan() {
                assert_eq!(
                    f32_to_f16_bits(f),
                    h,
                    "{h:#06x} decoded to {f} which re-encodes differently"
                );
            }
        }
    }

    #[test]
    fn nan_stays_nan() {
        assert!(quantize(f32::NAN).is_nan());
    }

    #[test]
    fn quantization_error_is_bounded() {
        // Relative error of f16 rounding is at most 2^-11 for normal
        // values.
        let mut x = 0.001f32;
        while x < 60000.0 {
            let q = quantize(x);
            let rel = ((q - x) / x).abs();
            assert!(rel <= 2.0_f32.powi(-11), "x = {x}: rel = {rel}");
            x *= 1.37;
        }
    }

    #[test]
    fn quantize_slice_applies_elementwise() {
        let mut xs = vec![1.0f32, 1.0 + 1e-4, -2.65625];
        quantize_slice(&mut xs);
        assert_eq!(xs[0], 1.0);
        assert_eq!(xs[1], 1.0, "1 + 1e-4 rounds to 1 in f16");
        assert_eq!(xs[2], -2.65625, "exactly representable in f16");
    }
}
