//! Model and workload builders for the training substrate.

use crate::attention::SelfAttention;
use crate::layers::{LayerNorm, Linear, Stage, Tanh};
use crate::tensor::Tensor;

/// Builds an MLP of `num_stages` pipeline stages, each a
/// `Linear(width→width) + Tanh` pair, with an input projection
/// `in_dim → width` in the first stage and an output projection
/// `width → out_dim` in the last. Initialization is deterministic in
/// `seed`.
///
/// # Panics
///
/// Panics if `num_stages == 0`.
pub fn build_mlp_stages(
    in_dim: usize,
    width: usize,
    out_dim: usize,
    num_stages: u32,
    seed: u64,
) -> Vec<Stage> {
    assert!(num_stages > 0, "need at least one stage");
    (0..num_stages)
        .map(|s| {
            let mut layers: Vec<Box<dyn crate::layers::Layer>> = Vec::new();
            let input = if s == 0 { in_dim } else { width };
            layers.push(Box::new(Linear::seeded(
                input,
                width,
                seed.wrapping_add(1 + 2 * s as u64),
            )));
            layers.push(Box::new(Tanh));
            if s == num_stages - 1 {
                layers.push(Box::new(Linear::seeded(
                    width,
                    out_dim,
                    seed.wrapping_add(2 + 2 * s as u64),
                )));
            }
            Stage::new(layers)
        })
        .collect()
}

/// Builds a pipeline of `num_stages` *transformer blocks*: each stage is
/// `LayerNorm(d) → SelfAttention(d) → Linear(d→d) → Tanh`
/// (pre-norm). With the convention that a
/// micro-batch tensor of shape `(n, d)` is one `n`-token sequence, this
/// is the layer structure of the paper's models (§A.1), scaled down.
/// Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `num_stages` or `d` is zero.
pub fn build_transformer_stages(d: usize, num_stages: u32, causal: bool, seed: u64) -> Vec<Stage> {
    assert!(num_stages > 0, "need at least one stage");
    assert!(d > 0, "hidden size must be positive");
    (0..num_stages)
        .map(|s| {
            let base = seed.wrapping_add(100 + 10 * s as u64);
            Stage::new(vec![
                Box::new(LayerNorm::new(d)),
                Box::new(SelfAttention::seeded(d, causal, base)),
                Box::new(Linear::seeded(d, d, base + 5)),
                Box::new(Tanh),
            ])
        })
        .collect()
}

/// Generates a deterministic synthetic regression batch:
/// `num_microbatches` micro-batches of `s_mb` samples with `in_dim`
/// inputs and `out_dim` targets each. Targets are a *learnable* function
/// of the inputs (`tanh` of a fixed random linear map), so training on
/// this workload actually drives the loss down. Returns
/// `(inputs, targets)`.
///
/// # Panics
///
/// Panics if any dimension is zero.
pub fn synthetic_batch(
    in_dim: usize,
    out_dim: usize,
    num_microbatches: u32,
    s_mb: u32,
    seed: u64,
) -> (Vec<Tensor>, Vec<Tensor>) {
    assert!(
        in_dim > 0 && out_dim > 0 && num_microbatches > 0 && s_mb > 0,
        "dimensions must be positive"
    );
    let mut state = seed.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(99);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f32 / (1u64 << 53) as f32 - 0.5
    };
    // The hidden teacher map.
    let teacher = Tensor::from_vec(
        in_dim,
        out_dim,
        (0..in_dim * out_dim).map(|_| 2.0 * next()).collect(),
    );
    let mut inputs = Vec::with_capacity(num_microbatches as usize);
    let mut targets = Vec::with_capacity(num_microbatches as usize);
    for _ in 0..num_microbatches {
        let x = Tensor::from_vec(
            s_mb as usize,
            in_dim,
            (0..s_mb as usize * in_dim).map(|_| next()).collect(),
        );
        let y = x.matmul(&teacher).map(f32::tanh);
        inputs.push(x);
        targets.push(y);
    }
    (inputs, targets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_shapes_chain() {
        let stages = build_mlp_stages(4, 8, 3, 4, 1);
        assert_eq!(stages.len(), 4);
        let x = Tensor::zeros(2, 4);
        let mut h = x;
        for s in &stages {
            h = s.forward(&h);
        }
        assert_eq!((h.rows(), h.cols()), (2, 3));
    }

    #[test]
    fn builders_are_deterministic() {
        let a = build_mlp_stages(4, 8, 3, 2, 7);
        let b = build_mlp_stages(4, 8, 3, 2, 7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.param_vector(), y.param_vector());
        }
        let (i1, t1) = synthetic_batch(4, 3, 2, 5, 9);
        let (i2, t2) = synthetic_batch(4, 3, 2, 5, 9);
        assert_eq!(i1, i2);
        assert_eq!(t1, t2);
    }

    #[test]
    fn batch_shapes() {
        let (inputs, targets) = synthetic_batch(6, 2, 3, 4, 1);
        assert_eq!(inputs.len(), 3);
        assert_eq!((inputs[0].rows(), inputs[0].cols()), (4, 6));
        assert_eq!((targets[2].rows(), targets[2].cols()), (4, 2));
    }

    #[test]
    fn different_seeds_differ() {
        let (a, _) = synthetic_batch(4, 2, 1, 2, 1);
        let (b, _) = synthetic_batch(4, 2, 1, 2, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn transformer_stages_chain_shapes() {
        let stages = build_transformer_stages(6, 3, true, 11);
        assert_eq!(stages.len(), 3);
        let x = Tensor::zeros(5, 6); // 5 tokens, hidden 6
        let mut h = x;
        for s in &stages {
            h = s.forward(&h);
        }
        assert_eq!((h.rows(), h.cols()), (5, 6));
        // Per stage: norm 2d + attention 4d² + linear (d² + d) params.
        assert_eq!(stages[0].num_params(), 2 * 6 + 4 * 36 + 36 + 6);
    }

    #[test]
    fn transformer_builder_is_deterministic() {
        let a = build_transformer_stages(4, 2, false, 3);
        let b = build_transformer_stages(4, 2, false, 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.param_vector(), y.param_vector());
        }
    }
}
