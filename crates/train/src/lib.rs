//! # bfpp-train — a real training substrate
//!
//! A performance simulator can show that the breadth-first schedule is
//! *fast*; it cannot show that it is *correct*. This crate runs the
//! schedules for real: an f32 tensor library with hand-written backward
//! passes ([`tensor`], [`layers`]), a serial reference implementation
//! ([`serial`]), and a multi-threaded pipeline executor ([`pipeline`])
//! with one OS thread per simulated device, crossbeam channels for the
//! stage boundaries, and the shared-memory collectives of
//! [`bfpp_collectives::thread`] for data parallelism.
//!
//! The executor consumes a [`bfpp_core::Schedule`] **verbatim** — each
//! device thread executes exactly the action order the generator
//! produced — and supports all three data-parallel sharding levels,
//! including fully sharded weights reconstructed around each
//! same-(stage, direction) run, exactly as the paper's §4.2 prescribes.
//! The test suite proves the load-bearing property: for every schedule ×
//! sharding combination, the losses and the updated weights match the
//! serial reference (bit-for-bit for the unsharded and partially sharded
//! variants, whose reduction orders we make deterministic).
//!
//! Device threads run inside a panic-catching harness: a worker that
//! panics or errors poisons its collective group and drops its channels,
//! so peers fail fast with a typed [`pipeline::TrainError`] instead of
//! deadlocking, and transient faults can be retried with
//! [`pipeline::run_batch_with_retry`] (see the [`pipeline`] module docs
//! for the fault model). The retry loop is observable:
//! [`pipeline::run_batch_with_retry_instrumented`] records attempts,
//! retries, per-cause failure counts and attempt/backoff wall-clock
//! spans into a [`bfpp_sim::observe::Counters`], the same dependency-free
//! registry the configuration search threads through its
//! `SearchReport`.
//!
//! ```
//! use bfpp_core::ScheduleKind;
//! use bfpp_parallel::{DataParallelism, Placement};
//! use bfpp_train::pipeline::{run_batch, TrainSpec};
//! use bfpp_train::builder::{build_mlp_stages, synthetic_batch};
//!
//! let placement = Placement::looping(2, 2);
//! let stages = build_mlp_stages(8, 16, 4, placement.num_stages(), 42);
//! let (inputs, targets) = synthetic_batch(8, 4, 2 * 4, 2, 7);
//! let spec = TrainSpec {
//!     kind: ScheduleKind::BreadthFirst,
//!     placement,
//!     n_mb: 4,
//!     n_dp: 2,
//!     dp: DataParallelism::FullySharded,
//!     optimizer: bfpp_train::optim::OptimizerKind::sgd(0.01),
//!     half_comms: false,
//! };
//! let result = run_batch(&spec, stages, &inputs, &targets);
//! assert!(result.mean_loss.is_finite());
//! ```

pub mod attention;
pub mod builder;
pub mod half;
pub mod layers;
pub mod loss;
pub mod optim;
pub mod pipeline;
pub mod serial;
pub mod tensor;
