//! Loss functions.

use crate::tensor::Tensor;

/// Mean-squared-error loss over one micro-batch:
/// `L = mean((pred − target)²)`, with gradient `2·(pred − target)/n`.
///
/// Returns `(loss, grad)`.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn mse(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(
        (pred.rows(), pred.cols()),
        (target.rows(), target.cols()),
        "mse shape mismatch"
    );
    let diff = pred.sub(target);
    let n = (pred.rows() * pred.cols()) as f32;
    let loss = diff.sq_norm() / n;
    let grad = diff.scale(2.0 / n);
    (loss, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_when_equal() {
        let a = Tensor::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let (loss, grad) = mse(&a, &a);
        assert_eq!(loss, 0.0);
        assert!(grad.data().iter().all(|g| *g == 0.0));
    }

    #[test]
    fn known_values() {
        let p = Tensor::from_vec(1, 2, vec![1.0, 3.0]);
        let t = Tensor::from_vec(1, 2, vec![0.0, 1.0]);
        let (loss, grad) = mse(&p, &t);
        // ((1)² + (2)²)/2 = 2.5; grads: 2·diff/2 = diff.
        assert!((loss - 2.5).abs() < 1e-7);
        assert_eq!(grad.data(), &[1.0, 2.0]);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let p = Tensor::from_vec(1, 3, vec![0.5, -0.5, 2.0]);
        let t = Tensor::from_vec(1, 3, vec![0.0, 0.0, 1.0]);
        let (_, grad) = mse(&p, &t);
        let eps = 1e-3;
        for i in 0..3 {
            let mut pp = p.clone();
            pp.data_mut()[i] += eps;
            let mut pm = p.clone();
            pm.data_mut()[i] -= eps;
            let numeric = (mse(&pp, &t).0 - mse(&pm, &t).0) / (2.0 * eps);
            assert!((numeric - grad.data()[i]).abs() < 1e-3);
        }
    }
}
