//! The serial reference implementation.
//!
//! One process, no pipeline, no threads: every micro-batch of every
//! data-parallel replica runs forward then backward through all stages in
//! order; gradients accumulate per replica in micro-batch order, replicas
//! sum in rank order, and the optimizer applies the update. This defines
//! the ground truth the pipelined executor must match.

use crate::layers::Stage;
use crate::loss::mse;
use crate::optim::{OptimizerKind, OptimizerState};
use crate::tensor::Tensor;

/// The result of one serial training step.
#[derive(Debug)]
pub struct SerialResult {
    /// Stages with updated parameters.
    pub stages: Vec<Stage>,
    /// Per-micro-batch losses, in global micro-batch order (replica 0's
    /// micro-batches first).
    pub losses: Vec<f32>,
    /// Final accumulated gradients per stage (after the cross-replica
    /// sum), for equivalence checks.
    pub gradients: Vec<Vec<f32>>,
}

/// Runs one training step serially with plain SGD (learning rate `lr`).
///
/// See [`run_serial_stateful`] for the general, stateful-optimizer form;
/// this convenience keeps the one-step SGD call sites terse.
///
/// # Panics
///
/// Panics if the micro-batch counts do not match.
pub fn run_serial(
    stages: Vec<Stage>,
    inputs: &[Tensor],
    targets: &[Tensor],
    n_dp: u32,
    lr: f32,
) -> SerialResult {
    let kind = OptimizerKind::sgd(lr);
    let states = stages
        .iter()
        .map(|s| kind.init_state(s.num_params()))
        .collect();
    run_serial_stateful(stages, inputs, targets, n_dp, kind, states).0
}

/// Runs one training step serially with an arbitrary optimizer, carrying
/// its state across calls.
///
/// `inputs`/`targets` hold `n_dp · n_mb` micro-batches; replica `r` owns
/// micro-batches `r·n_mb .. (r+1)·n_mb`. Gradients are summed over all
/// micro-batches (replica-major, micro-batch order within a replica) and
/// applied once. Returns the step result and the advanced optimizer
/// states (one full-length state per stage).
///
/// # Panics
///
/// Panics if the micro-batch counts, state count or state lengths do not
/// match.
pub fn run_serial_stateful(
    mut stages: Vec<Stage>,
    inputs: &[Tensor],
    targets: &[Tensor],
    n_dp: u32,
    optimizer: OptimizerKind,
    mut states: Vec<OptimizerState>,
) -> (SerialResult, Vec<OptimizerState>) {
    assert_eq!(inputs.len(), targets.len(), "inputs/targets mismatch");
    assert!(n_dp > 0, "n_dp must be positive");
    assert!(
        inputs.len().is_multiple_of(n_dp as usize),
        "micro-batches must divide evenly among replicas"
    );
    assert_eq!(states.len(), stages.len(), "one optimizer state per stage");
    let n_mb = inputs.len() / n_dp as usize;

    // Per-replica gradient accumulators, summed in rank order afterwards
    // to mirror the deterministic all-reduce.
    let mut per_replica: Vec<Vec<Vec<f32>>> = (0..n_dp as usize)
        .map(|_| stages.iter().map(|s| vec![0.0; s.num_params()]).collect())
        .collect();
    let mut losses = Vec::with_capacity(inputs.len());

    for (r, replica_grads) in per_replica.iter_mut().enumerate() {
        for m in 0..n_mb {
            let idx = r * n_mb + m;
            // Forward, checkpointing each stage's input.
            let mut stage_inputs: Vec<Tensor> = Vec::with_capacity(stages.len());
            let mut x = inputs[idx].clone();
            for s in &stages {
                stage_inputs.push(x.clone());
                x = s.forward(&x);
            }
            let (loss, mut g) = mse(&x, &targets[idx]);
            losses.push(loss);
            // Backward through stages in reverse.
            for (si, s) in stages.iter().enumerate().rev() {
                g = s.backward(&stage_inputs[si], &g, &mut replica_grads[si]);
            }
        }
    }

    // Cross-replica sum in rank order (the all-reduce convention).
    let mut gradients: Vec<Vec<f32>> = per_replica[0].clone();
    for rep in &per_replica[1..] {
        for (acc, g) in gradients.iter_mut().zip(rep) {
            for (a, x) in acc.iter_mut().zip(g) {
                *a += *x;
            }
        }
    }

    // Optimizer update.
    for ((s, g), st) in stages.iter_mut().zip(&gradients).zip(states.iter_mut()) {
        let mut p = s.param_vector();
        optimizer.step(st, &mut p, g);
        s.set_param_vector(&p);
    }

    (
        SerialResult {
            stages,
            losses,
            gradients,
        },
        states,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_mlp_stages, synthetic_batch};

    #[test]
    fn loss_decreases_over_steps() {
        let mut stages = build_mlp_stages(4, 8, 2, 3, 5);
        let (inputs, targets) = synthetic_batch(4, 2, 4, 8, 11);
        let mut last = f32::INFINITY;
        for step in 0..30 {
            let r = run_serial(stages, &inputs, &targets, 1, 0.05);
            stages = r.stages;
            let mean: f32 = r.losses.iter().sum::<f32>() / r.losses.len() as f32;
            if step % 10 == 9 {
                assert!(mean < last, "loss must decrease: {last} -> {mean}");
                last = mean;
            }
        }
    }

    #[test]
    fn adam_converges_faster_than_sgd_here() {
        let (inputs, targets) = synthetic_batch(4, 2, 4, 8, 11);
        let run = |kind: OptimizerKind| {
            let mut stages = build_mlp_stages(4, 8, 2, 3, 5);
            let mut states: Vec<_> = stages
                .iter()
                .map(|s| kind.init_state(s.num_params()))
                .collect();
            let mut mean = f32::INFINITY;
            for _ in 0..40 {
                let (r, st) = run_serial_stateful(stages, &inputs, &targets, 1, kind, states);
                stages = r.stages;
                states = st;
                mean = r.losses.iter().sum::<f32>() / r.losses.len() as f32;
            }
            mean
        };
        let sgd = run(OptimizerKind::sgd(0.01));
        let adam = run(OptimizerKind::adam(0.01));
        assert!(adam < sgd, "adam {adam} should beat sgd {sgd} on this toy");
    }

    #[test]
    fn replicas_see_their_own_microbatches() {
        let stages = build_mlp_stages(4, 8, 2, 2, 5);
        let (inputs, targets) = synthetic_batch(4, 2, 4, 2, 3);
        let r = run_serial(stages, &inputs, &targets, 2, 0.0);
        assert_eq!(r.losses.len(), 4);
        // lr = 0: weights unchanged.
        let fresh = build_mlp_stages(4, 8, 2, 2, 5);
        for (a, b) in r.stages.iter().zip(&fresh) {
            assert_eq!(a.param_vector(), b.param_vector());
        }
    }

    #[test]
    fn gradient_sum_is_replica_order() {
        // With n_dp = 2 the gradient must equal g(replica0) + g(replica1)
        // in that exact order; verify against manual composition.
        let stages = build_mlp_stages(3, 4, 1, 2, 9);
        let (inputs, targets) = synthetic_batch(3, 1, 2, 2, 13);
        let both = run_serial(build_mlp_stages(3, 4, 1, 2, 9), &inputs, &targets, 2, 0.0);
        let r0 = run_serial(
            build_mlp_stages(3, 4, 1, 2, 9),
            &inputs[..1],
            &targets[..1],
            1,
            0.0,
        );
        let r1 = run_serial(stages, &inputs[1..], &targets[1..], 1, 0.0);
        for ((g, a), b) in both.gradients.iter().zip(&r0.gradients).zip(&r1.gradients) {
            for ((gi, ai), bi) in g.iter().zip(a).zip(b) {
                assert_eq!(*gi, ai + bi);
            }
        }
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn uneven_replicas_rejected() {
        let stages = build_mlp_stages(3, 4, 1, 1, 9);
        let (inputs, targets) = synthetic_batch(3, 1, 3, 1, 13);
        run_serial(stages, &inputs, &targets, 2, 0.1);
    }

    #[test]
    #[should_panic(expected = "one optimizer state per stage")]
    fn state_count_checked() {
        let stages = build_mlp_stages(3, 4, 1, 2, 9);
        let (inputs, targets) = synthetic_batch(3, 1, 1, 1, 13);
        run_serial_stateful(
            stages,
            &inputs,
            &targets,
            1,
            OptimizerKind::sgd(0.1),
            vec![],
        );
    }
}
