//! Model presets used throughout the paper.

use crate::transformer::TransformerConfig;

/// The paper's large evaluation model (Table 5.1): a 52 B-parameter BERT —
/// 64 layers, 64 heads × 128, hidden 8192, sequence length 1024.
pub fn bert_52b() -> TransformerConfig {
    TransformerConfig::new("bert-52b", 64, 64, 128, 1024, 30522)
}

/// The paper's small evaluation model (Table 5.1): a 6.6 B-parameter BERT —
/// 32 layers, 32 heads × 128, hidden 4096, sequence length 1024.
pub fn bert_6_6b() -> TransformerConfig {
    TransformerConfig::new("bert-6.6b", 32, 32, 128, 1024, 30522)
}

/// GPT-3 175 B (Appendix A examples): 96 layers, 96 heads × 128, hidden
/// 12288, sequence length 2048.
pub fn gpt3() -> TransformerConfig {
    TransformerConfig::new("gpt3-175b", 96, 96, 128, 2048, 51200)
}

/// The trillion-parameter "1T" example (Appendix A): 128 layers, 160
/// heads, hidden 25600, sequence length 2048.
///
/// The paper's Appendix A.1 lists `S_hidden = 12288` for this model, but
/// its own worked numbers (≈1 T parameters, 1050 MB activations/sample,
/// 1600 MB of checkpoints, 7 GB DP_FS state) are only consistent with the
/// Megatron-LM 1 T configuration, `S_hidden = 25600` — we follow the
/// numbers, treating the 12288 as a typo.
pub fn one_t() -> TransformerConfig {
    TransformerConfig::new("1t", 128, 160, 160, 2048, 51200)
}

/// Looks a preset up by name (`"52b"`, `"6.6b"`, `"gpt3"`, `"1t"`),
/// accepting a few aliases. Returns `None` for unknown names.
pub fn by_name(name: &str) -> Option<TransformerConfig> {
    match name.to_ascii_lowercase().as_str() {
        "52b" | "bert-52b" | "bert_52b" => Some(bert_52b()),
        "6.6b" | "6607m" | "bert-6.6b" | "bert_6_6b" => Some(bert_6_6b()),
        "gpt3" | "gpt-3" | "175b" => Some(gpt3()),
        "1t" | "one_t" => Some(one_t()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bert_52b_matches_table_5_1() {
        let m = bert_52b();
        assert_eq!(
            (
                m.num_layers,
                m.num_heads,
                m.head_size,
                m.hidden_size,
                m.seq_length
            ),
            (64, 64, 128, 8192, 1024)
        );
        // ~52 B parameters: 12 · 64 · 8192² ≈ 51.5 B + embeddings.
        let b = m.total_params() as f64 / 1e9;
        assert!((51.0..53.0).contains(&b), "got {b} B");
    }

    #[test]
    fn bert_6_6b_matches_table_5_1() {
        let m = bert_6_6b();
        assert_eq!(
            (
                m.num_layers,
                m.num_heads,
                m.head_size,
                m.hidden_size,
                m.seq_length
            ),
            (32, 32, 128, 4096, 1024)
        );
        // Table 5.1 calls it "6607 M".
        let b = m.total_params() as f64 / 1e9;
        assert!((6.4..6.8).contains(&b), "got {b} B");
    }

    #[test]
    fn gpt3_is_175b() {
        let b = gpt3().total_params() as f64 / 1e9;
        assert!((170.0..180.0).contains(&b), "got {b} B");
    }

    #[test]
    fn one_t_is_a_trillion() {
        let m = one_t();
        assert_eq!(m.hidden_size, 25600);
        let t = m.total_params() as f64 / 1e12;
        assert!((0.98..1.05).contains(&t), "got {t} T");
    }

    #[test]
    fn lookup_by_name_and_aliases() {
        assert_eq!(by_name("52b").unwrap().name, "bert-52b");
        assert_eq!(by_name("6.6B").unwrap().name, "bert-6.6b");
        assert_eq!(by_name("GPT3").unwrap().name, "gpt3-175b");
        assert_eq!(by_name("1t").unwrap().name, "1t");
        assert!(by_name("nope").is_none());
    }
}
