//! Memory-footprint formulas (paper Appendix A.2).
//!
//! All results are in bytes. "State memory" covers the training state
//! (fp32 master weights + Adam momenta) and the half-precision weight and
//! gradient buffers; "activation memory" covers layer activations and
//! their gradients; "checkpoint memory" covers activation checkpoints
//! retained between the forward and backward pass of each micro-batch.

use crate::transformer::TransformerConfig;

/// A (low, high) range of state-memory estimates, reflecting the paper's
/// "(12 to 20)" and "(2 or 4)" bytes-per-parameter brackets, which depend
/// on whether gradients can be reduced immediately and buffers reused.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StateMemoryRange {
    /// Optimistic estimate (immediate gradient reduction, shared buffers).
    pub low: f64,
    /// Conservative estimate.
    pub high: f64,
}

impl StateMemoryRange {
    /// Midpoint of the range (a reasonable single figure for search).
    pub fn mid(&self) -> f64 {
        0.5 * (self.low + self.high)
    }
}

/// Eq. (10): unsharded data parallelism (`DP_0`) state memory per device,
/// `(12 to 20) · N_params / (N_PP · N_TP)` bytes.
///
/// # Panics
///
/// Panics if `n_pp` or `n_tp` is zero.
pub fn state_memory_dp0_bytes(params: u64, n_pp: u32, n_tp: u32) -> StateMemoryRange {
    assert!(n_pp > 0 && n_tp > 0, "parallel degrees must be positive");
    let per_device = params as f64 / (n_pp as f64 * n_tp as f64);
    StateMemoryRange {
        low: 12.0 * per_device,
        high: 20.0 * per_device,
    }
}

/// Eq. (11): partially sharded data parallelism (`DP_PS`, ZeRO stage 2)
/// state memory per device, `(2 or 4) · N_params / (N_PP · N_TP)` bytes
/// (given enough data parallelism; the half-precision buffers dominate).
/// The low figure applies when gradients can be reduced immediately
/// (breadth-first schedule or a single micro-batch).
///
/// # Panics
///
/// Panics if `n_pp` or `n_tp` is zero.
pub fn state_memory_ps_bytes(params: u64, n_pp: u32, n_tp: u32) -> StateMemoryRange {
    assert!(n_pp > 0 && n_tp > 0, "parallel degrees must be positive");
    let per_device = params as f64 / (n_pp as f64 * n_tp as f64);
    StateMemoryRange {
        low: 2.0 * per_device,
        high: 4.0 * per_device,
    }
}

/// Eq. (12): fully sharded data parallelism (`DP_FS`, ZeRO stage 3) state
/// memory per device, `8 · N_params / (N_layers · N_TP)` bytes — only the
/// two active layers keep half-precision weight and gradient buffers
/// resident (2 layers × 2 buffers × 2 bytes).
///
/// # Panics
///
/// Panics if `n_layers` or `n_tp` is zero.
pub fn state_memory_fs_bytes(params: u64, n_layers: u32, n_tp: u32) -> StateMemoryRange {
    assert!(
        n_layers > 0 && n_tp > 0,
        "layer count and N_TP must be positive"
    );
    let v = 8.0 * params as f64 / (n_layers as f64 * n_tp as f64);
    StateMemoryRange { low: v, high: v }
}

/// Eq. (13): peak activation (+ gradient) memory for one layer and one
/// micro-batch of size `s_mb`, under tensor parallelism `n_tp`:
///
/// `S_seq · S_mb · S_hidden · (10 + 24/N_TP + 5·S_seq·N_heads/(S_hidden·N_TP))`
///
/// # Panics
///
/// Panics if `n_tp` or `s_mb` is zero.
pub fn activation_memory_bytes(model: &TransformerConfig, s_mb: u32, n_tp: u32) -> f64 {
    assert!(n_tp > 0, "N_TP must be positive");
    assert!(s_mb > 0, "micro-batch size must be positive");
    let seq = model.seq_length as f64;
    let h = model.hidden_size as f64;
    let heads = model.num_heads as f64;
    let ntp = n_tp as f64;
    seq * s_mb as f64 * h * (10.0 + 24.0 / ntp + 5.0 * seq * heads / (h * ntp))
}

/// Eq. (14) inner factor: bytes of one activation checkpoint (one layer,
/// one micro-batch): `2 · S_seq · S_mb · S_hidden / N_TP` (stored in half
/// precision).
///
/// The *number* of live checkpoints depends on the pipeline schedule and
/// is computed in `bfpp-core`; multiply by this figure.
///
/// # Panics
///
/// Panics if `n_tp` or `s_mb` is zero.
pub fn checkpoint_memory_per_layer_bytes(model: &TransformerConfig, s_mb: u32, n_tp: u32) -> f64 {
    assert!(n_tp > 0, "N_TP must be positive");
    assert!(s_mb > 0, "micro-batch size must be positive");
    2.0 * model.seq_length as f64 * s_mb as f64 * model.hidden_size as f64 / n_tp as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    const MIB: f64 = 1024.0 * 1024.0;
    const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

    #[test]
    fn gpt3_activation_memory_matches_paper() {
        // Paper A.2.2: "GPT-3 uses 552 MB per sample" (S_mb = 1, N_TP = 8).
        let m = presets::gpt3();
        let bytes = activation_memory_bytes(&m, 1, 8);
        assert!((bytes / MIB - 552.0).abs() < 1.0, "got {} MiB", bytes / MIB);
    }

    #[test]
    fn one_t_activation_memory_matches_paper() {
        // Paper A.2.2: "1T uses 1050 MB per sample".
        let m = presets::one_t();
        let bytes = activation_memory_bytes(&m, 1, 8);
        assert!(
            (bytes / MIB - 1050.0).abs() < 2.0,
            "got {} MiB",
            bytes / MIB
        );
    }

    #[test]
    fn gpt3_checkpoint_memory_at_beta_min_matches_paper() {
        // Paper A.2.2: at β_min (N_mb = N_PP = 4, S_mb = 1, N_TP = 8) with
        // GPipe/BF the checkpoints use N_mb·N_layers/N_PP ·
        // 2·S_seq·S_mb·S_hidden/N_TP = 576 MB for GPT-3.
        let m = presets::gpt3();
        let per_layer = checkpoint_memory_per_layer_bytes(&m, 1, 8);
        let count = 4.0 * m.num_layers as f64 / 4.0;
        assert!(
            (per_layer * count / MIB - 576.0).abs() < 1.0,
            "got {} MiB",
            per_layer * count / MIB
        );
    }

    #[test]
    fn one_t_checkpoint_memory_at_beta_min_matches_paper() {
        // Paper A.2.2: 1600 MB for 1T.
        let m = presets::one_t();
        let per_layer = checkpoint_memory_per_layer_bytes(&m, 1, 8);
        let count = 4.0 * m.num_layers as f64 / 4.0;
        assert!(
            (per_layer * count / MIB - 1600.0).abs() < 2.0,
            "got {} MiB",
            per_layer * count / MIB
        );
    }

    #[test]
    fn gpt3_state_memory_ps_matches_paper() {
        // Paper A.2.1: GPT-3 with N_TP = 8, N_PP = 4 and DP_PS: 10 or 20 GB.
        // The paper quotes decimal-ish GB on the nominal 175e9 parameters.
        let r = state_memory_ps_bytes(175_000_000_000, 4, 8);
        assert!(
            (r.low / GIB - 10.0).abs() < 1.0,
            "low = {} GiB",
            r.low / GIB
        );
        assert!(
            (r.high / GIB - 20.0).abs() < 1.0,
            "high = {} GiB",
            r.high / GIB
        );
    }

    #[test]
    fn one_t_state_memory_fs_matches_paper() {
        // Paper A.2.1: 1T with DP_FS needs about 7 GB.
        let m = presets::one_t();
        let r = state_memory_fs_bytes(m.total_params(), m.num_layers, 8);
        assert!((r.low / GIB - 7.0).abs() < 1.0, "got {} GiB", r.low / GIB);
        assert_eq!(r.low, r.high);
    }

    #[test]
    fn dp0_brackets_are_wider_than_ps() {
        let r0 = state_memory_dp0_bytes(1_000_000, 2, 2);
        let rps = state_memory_ps_bytes(1_000_000, 2, 2);
        assert!(r0.low > rps.high);
        assert_eq!(r0.mid(), (r0.low + r0.high) / 2.0);
    }

    #[test]
    fn fs_memory_independent_of_pp() {
        let m = presets::gpt3();
        let a = state_memory_fs_bytes(m.total_params(), m.num_layers, 8);
        // No N_PP argument at all: sharding is over layers.
        assert!(a.low > 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn activation_memory_rejects_zero_tp() {
        activation_memory_bytes(&presets::gpt3(), 1, 0);
    }
}
