//! # bfpp-model — analytic transformer model
//!
//! Parameter counts, floating-point operation counts and memory footprints
//! for decoder/encoder-style transformer language models, following the
//! conventions of the Breadth-First Pipeline Parallelism paper
//! (Appendix A):
//!
//! * `N_params ≈ 12 · N_layers · S_hidden²` (plus embeddings),
//! * ≈ 8 flop per parameter per token per batch (2 forward, 4 backward,
//!   2 recomputation under activation checkpointing) — Eq. (9),
//! * per-layer activation memory — Eq. (13),
//! * activation-checkpoint memory — Eq. (14),
//! * training-state memory under the three data-parallel sharding levels —
//!   Eqs. (10)–(12).
//!
//! Presets cover the paper's evaluation models (Table 5.1: the 52 B and
//! 6.6 B BERT models) and the appendix examples (GPT-3 and the
//! trillion-parameter "1T" configuration).
//!
//! ```
//! use bfpp_model::presets;
//!
//! let m = presets::bert_52b();
//! // Table 5.1 row: 64 layers, 64 heads of size 128, hidden 8192, seq 1024.
//! assert_eq!(m.num_layers, 64);
//! assert!((m.total_params() as f64) > 51e9);
//! ```

mod memory;
pub mod presets;
mod transformer;

pub use memory::{
    activation_memory_bytes, checkpoint_memory_per_layer_bytes, state_memory_dp0_bytes,
    state_memory_fs_bytes, state_memory_ps_bytes, StateMemoryRange,
};
pub use transformer::TransformerConfig;
