//! Transformer configuration, parameter and flop counts.

use std::fmt;

/// An analytic description of a transformer language model.
///
/// The model consists of `num_layers` identical transformer layers
/// (multi-head attention of `num_heads` heads of size `head_size`,
/// followed by a two-layer MLP with hidden size `mlp_size`), preceded by a
/// token embedding and followed by an output (LM head) layer, processed at
/// sequence length `seq_length`.
///
/// The paper assumes the common choices `num_heads × head_size =
/// hidden_size` and `mlp_size = 4 × hidden_size`; the presets follow them,
/// but other shapes are accepted.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TransformerConfig {
    /// Model name for reporting.
    pub name: String,
    /// Number of transformer layers (`N_layers`).
    pub num_layers: u32,
    /// Attention heads per layer (`N_heads`).
    pub num_heads: u32,
    /// Size of each attention head (`S_head`).
    pub head_size: u32,
    /// Hidden (embedding) size (`S_hidden`).
    pub hidden_size: u32,
    /// MLP intermediate size (`S_mlp`), typically `4 × hidden_size`.
    pub mlp_size: u32,
    /// Training sequence length (`S_seq`).
    pub seq_length: u32,
    /// Vocabulary size (embedding rows).
    pub vocab_size: u32,
}

impl TransformerConfig {
    /// Creates a configuration with the standard shape
    /// (`hidden = heads × head_size`, `mlp = 4 × hidden`).
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(
        name: impl Into<String>,
        num_layers: u32,
        num_heads: u32,
        head_size: u32,
        seq_length: u32,
        vocab_size: u32,
    ) -> Self {
        let hidden_size = num_heads
            .checked_mul(head_size)
            .expect("hidden size overflow");
        let cfg = TransformerConfig {
            name: name.into(),
            num_layers,
            num_heads,
            head_size,
            hidden_size,
            mlp_size: 4 * hidden_size,
            seq_length,
            vocab_size,
        };
        cfg.validate();
        cfg
    }

    fn validate(&self) {
        assert!(self.num_layers > 0, "num_layers must be positive");
        assert!(self.num_heads > 0, "num_heads must be positive");
        assert!(self.head_size > 0, "head_size must be positive");
        assert!(self.hidden_size > 0, "hidden_size must be positive");
        assert!(self.mlp_size > 0, "mlp_size must be positive");
        assert!(self.seq_length > 0, "seq_length must be positive");
        assert!(self.vocab_size > 0, "vocab_size must be positive");
    }

    /// Parameters of one transformer layer: `4·h²` for attention
    /// (QKV + output projections) plus `2·h·mlp` for the MLP — `12·h²`
    /// at the standard `mlp = 4h` (the paper's approximation; biases and
    /// layer norms are neglected, as in the paper).
    pub fn params_per_layer(&self) -> u64 {
        let h = self.hidden_size as u64;
        4 * h * h + 2 * h * self.mlp_size as u64
    }

    /// Parameters of the token embedding (shared with the output head in
    /// BERT/GPT style models, so counted once).
    pub fn embedding_params(&self) -> u64 {
        self.vocab_size as u64 * self.hidden_size as u64
    }

    /// Total parameters: `num_layers × params_per_layer + embedding`.
    pub fn total_params(&self) -> u64 {
        self.num_layers as u64 * self.params_per_layer() + self.embedding_params()
    }

    /// Forward-pass flops for one *token* through one layer:
    /// `2 flop/param` (one multiply-accumulate per parameter), the paper's
    /// convention — attention-score flops are neglected relative to the
    /// matrix multiplies for the large models considered.
    pub fn fwd_flops_per_token_per_layer(&self) -> f64 {
        2.0 * self.params_per_layer() as f64
    }

    /// Backward-pass flops for one token through one layer: `4 flop/param`
    /// (gradients w.r.t. both inputs and weights).
    pub fn bwd_flops_per_token_per_layer(&self) -> f64 {
        4.0 * self.params_per_layer() as f64
    }

    /// Recomputation flops under activation checkpointing: one extra
    /// forward pass, paid during the backward step.
    pub fn recompute_flops_per_token_per_layer(&self) -> f64 {
        self.fwd_flops_per_token_per_layer()
    }

    /// Total flops for one token through one layer for a full training
    /// step with activation checkpointing: `8 flop/param` (Eq. 9 context).
    pub fn total_flops_per_token_per_layer(&self) -> f64 {
        self.fwd_flops_per_token_per_layer()
            + self.bwd_flops_per_token_per_layer()
            + self.recompute_flops_per_token_per_layer()
    }

    /// *Model flops* for a whole batch of `batch_size` sequences: the
    /// flops credited when computing utilization (fwd + bwd, excluding
    /// recomputation, which is overhead — matching how Tflop/s/GPU is
    /// conventionally reported and how the paper counts "total compute").
    pub fn model_flops_per_batch(&self, batch_size: u64) -> f64 {
        let tokens = batch_size as f64 * self.seq_length as f64;
        tokens
            * self.num_layers as f64
            * (self.fwd_flops_per_token_per_layer() + self.bwd_flops_per_token_per_layer())
    }

    /// Hardware flops actually executed per batch (including the
    /// checkpoint recomputation).
    pub fn hardware_flops_per_batch(&self, batch_size: u64) -> f64 {
        let tokens = batch_size as f64 * self.seq_length as f64;
        tokens * self.num_layers as f64 * self.total_flops_per_token_per_layer()
    }

    /// Forward flops of the embedding / output layers per token (two
    /// `h × vocab` matmuls for the LM head; the embedding lookup itself is
    /// bandwidth-bound and counted as zero flops, as is conventional).
    pub fn head_fwd_flops_per_token(&self) -> f64 {
        2.0 * self.embedding_params() as f64
    }

    /// Pipeline-parallel transfer size per token at a stage boundary:
    /// one hidden vector in half precision (2 bytes), per Appendix A.3.2.
    pub fn boundary_bytes_per_token(&self) -> f64 {
        2.0 * self.hidden_size as f64
    }
}

impl fmt::Display for TransformerConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({:.1} B params: {} layers x {} hidden, seq {})",
            self.name,
            self.total_params() as f64 / 1e9,
            self.num_layers,
            self.hidden_size,
            self.seq_length
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> TransformerConfig {
        TransformerConfig::new("toy", 4, 8, 16, 128, 1000)
    }

    #[test]
    fn standard_shape_derived() {
        let m = toy();
        assert_eq!(m.hidden_size, 128);
        assert_eq!(m.mlp_size, 512);
    }

    #[test]
    fn params_per_layer_is_12_h_squared() {
        let m = toy();
        let h = m.hidden_size as u64;
        assert_eq!(m.params_per_layer(), 12 * h * h);
    }

    #[test]
    fn total_params_includes_embedding() {
        let m = toy();
        assert_eq!(
            m.total_params(),
            4 * m.params_per_layer() + 1000 * m.hidden_size as u64
        );
    }

    #[test]
    fn flop_ratios_follow_paper_convention() {
        let m = toy();
        let fwd = m.fwd_flops_per_token_per_layer();
        assert_eq!(m.bwd_flops_per_token_per_layer(), 2.0 * fwd);
        assert_eq!(m.recompute_flops_per_token_per_layer(), fwd);
        // 8 flop per parameter per token in total.
        assert_eq!(
            m.total_flops_per_token_per_layer(),
            8.0 * m.params_per_layer() as f64
        );
    }

    #[test]
    fn batch_flop_accounting() {
        let m = toy();
        let b = 3u64;
        let tokens = (b * m.seq_length as u64) as f64;
        assert_eq!(
            m.model_flops_per_batch(b),
            tokens * m.num_layers as f64 * 6.0 * m.params_per_layer() as f64
        );
        assert!(m.hardware_flops_per_batch(b) > m.model_flops_per_batch(b));
    }

    #[test]
    fn boundary_bytes_are_half_precision_hidden() {
        assert_eq!(toy().boundary_bytes_per_token(), 256.0);
    }

    #[test]
    #[should_panic(expected = "num_layers")]
    fn rejects_zero_layers() {
        TransformerConfig::new("bad", 0, 8, 16, 128, 1000);
    }

    #[test]
    fn display_mentions_name_and_size() {
        let s = toy().to_string();
        assert!(s.contains("toy"));
        assert!(s.contains("layers"));
    }
}
