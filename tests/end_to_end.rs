//! Cross-crate integration tests: the paper's qualitative claims, checked
//! end-to-end through the full stack (model → cluster → schedules →
//! lowering → simulation → search).

use bfpp::cluster::presets::{dgx1_v100, dgx1_v100_ethernet};
use bfpp::core::ScheduleKind;
use bfpp::exec::search::{best_config, Method, SearchOptions};
use bfpp::exec::{simulate, KernelModel, OverlapConfig};
use bfpp::model::presets::{bert_52b, bert_6_6b};
use bfpp::parallel::{BatchConfig, DataParallelism, Grid, ParallelConfig, Placement};

fn quick_opts() -> SearchOptions {
    SearchOptions {
        max_microbatch: 8,
        max_loop: 16,
        max_actions: 60_000,
        threads: 0,
        ..SearchOptions::default()
    }
}

/// §5.2, Figure 5a: near β_min the ordering is
/// breadth-first > depth-first > non-looped ≫ no-pipeline.
#[test]
fn method_ordering_at_small_batch() {
    let model = bert_52b();
    let cluster = dgx1_v100(8);
    let k = KernelModel::v100();
    let opts = quick_opts();
    let t = |method, batch| {
        best_config(&model, &cluster, method, batch, &k, &opts)
            .map(|r| r.measurement.tflops_per_gpu)
            .unwrap_or(0.0)
    };
    let bf = t(Method::BreadthFirst, 8);
    let df = t(Method::DepthFirst, 8);
    let nl = t(Method::NonLooped, 8);
    let np = t(Method::NoPipeline, 8);
    assert!(bf > df, "bf {bf} !> df {df}");
    assert!(df > nl, "df {df} !> non-looped {nl}");
    assert!(nl > np, "non-looped {nl} !> no-pipeline {np}");
}

/// §5.2: the breadth-first advantage over the baselines near β_min is
/// large (the paper reports 53% and 43%; we require >25% to be robust to
/// calibration details).
#[test]
fn breadth_first_margin_near_beta_min() {
    let model = bert_52b();
    let cluster = dgx1_v100(8);
    let k = KernelModel::v100();
    let opts = quick_opts();
    let bf = best_config(&model, &cluster, Method::BreadthFirst, 9, &k, &opts)
        .unwrap()
        .measurement
        .tflops_per_gpu;
    let nl = best_config(&model, &cluster, Method::NonLooped, 8, &k, &opts)
        .unwrap()
        .measurement
        .tflops_per_gpu;
    let df = best_config(&model, &cluster, Method::DepthFirst, 8, &k, &opts)
        .unwrap()
        .measurement
        .tflops_per_gpu;
    assert!(
        bf > 1.25 * nl,
        "breadth-first must beat non-looped by a wide margin: {bf} vs {nl}"
    );
    assert!(
        bf > 1.15 * df,
        "breadth-first must beat depth-first clearly: {bf} vs {df}"
    );
}

/// Figure 5a's right side: with a large enough batch, the no-pipeline
/// method becomes competitive (within ~20% of breadth-first).
#[test]
fn no_pipeline_competitive_at_large_batch() {
    let model = bert_52b();
    let cluster = dgx1_v100(8);
    let k = KernelModel::v100();
    let opts = quick_opts();
    let bf = best_config(&model, &cluster, Method::BreadthFirst, 256, &k, &opts)
        .unwrap()
        .measurement
        .tflops_per_gpu;
    let np = best_config(&model, &cluster, Method::NoPipeline, 512, &k, &opts)
        .unwrap()
        .measurement
        .tflops_per_gpu;
    assert!(
        np > 0.8 * bf,
        "no-pipeline should catch up at high batch: {np} vs bf {bf}"
    );
}

/// §4.2/A.2: with the same grid and batch, breadth-first + fully sharded
/// uses less memory than the unsharded alternative, at comparable or
/// better speed.
#[test]
fn fully_sharded_breadth_first_saves_memory() {
    let model = bert_52b();
    let cluster = dgx1_v100(8);
    let k = KernelModel::v100();
    let mk = |dp| {
        ParallelConfig::new(
            Grid::new(4, 2, 8),
            Placement::looping(8, 8),
            BatchConfig::new(12, 1),
            dp,
        )
    };
    let fs = simulate(
        &model,
        &cluster,
        &mk(DataParallelism::FullySharded),
        ScheduleKind::BreadthFirst,
        OverlapConfig::full(),
        &k,
    )
    .unwrap();
    let dp0 = simulate(
        &model,
        &cluster,
        &mk(DataParallelism::Unsharded),
        ScheduleKind::BreadthFirst,
        OverlapConfig::full(),
        &k,
    )
    .unwrap();
    assert!(
        fs.memory_bytes < 0.5 * dp0.memory_bytes,
        "FS memory {} must be far below DP0 {}",
        fs.memory_gib(),
        dp0.memory_gib()
    );
    assert!(
        fs.tflops_per_gpu > 0.85 * dp0.tflops_per_gpu,
        "BF+FS must not give up much speed: {} vs {}",
        fs.tflops_per_gpu,
        dp0.tflops_per_gpu
    );
}

/// §4.3 / Figure 5c: on Ethernet everything is slower, and the
/// no-pipeline method suffers the most (its DP traffic cannot hide).
#[test]
fn ethernet_slows_everything_and_punishes_pure_dp() {
    let model = bert_6_6b();
    let ib = dgx1_v100(8);
    let eth = dgx1_v100_ethernet(8);
    let k = KernelModel::v100();
    let opts = quick_opts();
    let batch = 128;
    let run = |cluster, method| {
        best_config(&model, cluster, method, batch, &k, &opts)
            .map(|r| r.measurement.tflops_per_gpu)
            .unwrap_or(0.0)
    };
    let bf_ib = run(&ib, Method::BreadthFirst);
    let bf_eth = run(&eth, Method::BreadthFirst);
    let np_ib = run(&ib, Method::NoPipeline);
    let np_eth = run(&eth, Method::NoPipeline);
    assert!(bf_eth < bf_ib, "ethernet must slow breadth-first");
    assert!(np_eth < np_ib, "ethernet must slow no-pipeline");
    // Relative damage is worse for pure DP.
    assert!(
        np_eth / np_ib < bf_eth / bf_ib,
        "no-pipeline must lose more on ethernet: np {:.2} vs bf {:.2}",
        np_eth / np_ib,
        bf_eth / bf_ib
    );
    // And breadth-first leads on Ethernet at this batch.
    assert!(bf_eth > np_eth, "bf {bf_eth} !> np {np_eth} on ethernet");
}

/// Overlap matters (Figure 2b): the same breadth-first configuration
/// without network overlap loses meaningful throughput.
#[test]
fn disabling_overlap_hurts() {
    let model = bert_52b();
    let cluster = dgx1_v100(8);
    let k = KernelModel::v100();
    // A grid whose data-parallel groups span nodes (DP stride × width
    // exceeds a node), so the gradient traffic rides InfiniBand and
    // overlap has something real to hide.
    let cfg = ParallelConfig::new(
        Grid::new(16, 2, 2),
        Placement::looping(2, 16),
        BatchConfig::new(4, 1),
        DataParallelism::FullySharded,
    );
    let with = simulate(
        &model,
        &cluster,
        &cfg,
        ScheduleKind::BreadthFirst,
        OverlapConfig::full(),
        &k,
    )
    .unwrap();
    let without = simulate(
        &model,
        &cluster,
        &cfg,
        ScheduleKind::BreadthFirst,
        OverlapConfig::none(),
        &k,
    )
    .unwrap();
    assert!(
        with.tflops_per_gpu > 1.1 * without.tflops_per_gpu,
        "overlap must buy >10%: {} vs {}",
        with.tflops_per_gpu,
        without.tflops_per_gpu
    );
}

/// The search must actually pick looped configurations for the
/// breadth-first method at small batch — the mechanism, not just the
/// outcome.
#[test]
fn search_prefers_looping_at_small_batch() {
    let model = bert_52b();
    let cluster = dgx1_v100(8);
    let k = KernelModel::v100();
    let r = best_config(&model, &cluster, Method::BreadthFirst, 9, &k, &quick_opts()).unwrap();
    assert!(
        r.cfg.placement.n_loop() >= 4,
        "expected a deeply looped winner, got {}",
        r.cfg.placement
    );
}

/// Table E.1's structural signature of the Megatron depth-first baseline:
/// at large batch the synchronization-heavy transfers make deep
/// interleaving unprofitable, so the search settles on shallow loops
/// (the paper's winning configurations use 2 stages/device).
#[test]
fn depth_first_baseline_prefers_shallow_loops_at_large_batch() {
    let model = bert_52b();
    let cluster = dgx1_v100(8);
    let k = KernelModel::v100();
    let r = best_config(&model, &cluster, Method::DepthFirst, 256, &k, &quick_opts())
        .expect("feasible");
    assert!(
        r.cfg.placement.n_loop() <= 4,
        "expected a shallow-loop Megatron-style winner, got {}",
        r.cfg.placement
    );
    // While breadth-first at the same batch happily uses deeper loops or
    // large micro-batches with sharding.
    let bf = best_config(
        &model,
        &cluster,
        Method::BreadthFirst,
        256,
        &k,
        &quick_opts(),
    )
    .expect("feasible");
    assert!(bf.measurement.tflops_per_gpu > r.measurement.tflops_per_gpu);
    assert!(bf.cfg.dp.is_sharded(), "BF should win with sharding here");
}
