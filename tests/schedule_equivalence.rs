//! The load-bearing correctness matrix: every pipeline schedule × every
//! data-parallel sharding level trains *identically* to the serial
//! reference on real numbers.

use bfpp::core::ScheduleKind;
use bfpp::parallel::{DataParallelism, Placement};
use bfpp::train::builder::{build_mlp_stages, synthetic_batch};
use bfpp::train::pipeline::{run_batch, TrainSpec};
use bfpp::train::serial::run_serial;
use bfpp::train::tensor::Tensor;

const LR: f32 = 0.05;

fn max_weight_diff(a: &[bfpp::train::layers::Stage], b: &[bfpp::train::layers::Stage]) -> f32 {
    a.iter()
        .zip(b)
        .flat_map(|(x, y)| {
            x.param_vector()
                .into_iter()
                .zip(y.param_vector())
                .map(|(u, v)| (u - v).abs())
                .collect::<Vec<_>>()
        })
        .fold(0.0, f32::max)
}

fn data(n_mb: u32, n_dp: u32) -> (Vec<Tensor>, Vec<Tensor>) {
    synthetic_batch(6, 3, n_dp * n_mb, 4, 321)
}

#[test]
fn full_matrix_matches_serial() {
    // Shapes: (kind, n_pp, n_loop, n_mb, n_dp).
    let cases = [
        (ScheduleKind::GPipe, 2, 1, 4, 2),
        (ScheduleKind::GPipe, 4, 1, 8, 1),
        (ScheduleKind::OneFOneB, 2, 1, 6, 2),
        (ScheduleKind::OneFOneB, 4, 1, 8, 2),
        (ScheduleKind::DepthFirst, 2, 2, 4, 2),
        (ScheduleKind::DepthFirst, 2, 4, 6, 1),
        (ScheduleKind::BreadthFirst, 2, 2, 4, 2),
        (ScheduleKind::BreadthFirst, 2, 4, 5, 2),
        (ScheduleKind::BreadthFirst, 4, 2, 8, 1),
    ];
    for (kind, n_pp, n_loop, n_mb, n_dp) in cases {
        let placement = Placement::looping(n_pp, n_loop);
        let n_stage = placement.num_stages();
        for dp in DataParallelism::ALL {
            let stages = build_mlp_stages(6, 8, 3, n_stage, 99);
            let (inputs, targets) = data(n_mb, n_dp);
            let serial = run_serial(stages.clone(), &inputs, &targets, n_dp, LR);
            let spec = TrainSpec {
                kind,
                placement,
                n_mb,
                n_dp,
                dp,
                optimizer: bfpp::train::optim::OptimizerKind::sgd(LR),
                half_comms: false,
            };
            let piped = run_batch(&spec, stages, &inputs, &targets);
            assert_eq!(
                piped.losses, serial.losses,
                "{kind}/{dp} pp={n_pp} loop={n_loop}: losses must match exactly"
            );
            let diff = max_weight_diff(&piped.stages, &serial.stages);
            assert!(
                diff < 1e-5,
                "{kind}/{dp} pp={n_pp} loop={n_loop} mb={n_mb} dp={n_dp}: weights diverge by {diff}"
            );
        }
    }
}

#[test]
fn dp0_is_bitwise_identical_across_all_schedules() {
    // Under DP_0 the accumulation order per stage is micro-batch order in
    // every schedule, so gradients must agree to the last bit.
    let placement = Placement::looping(2, 2);
    let (inputs, targets) = data(8, 2);
    let mut reference: Option<Vec<Vec<f32>>> = None;
    for kind in [ScheduleKind::BreadthFirst, ScheduleKind::DepthFirst] {
        let spec = TrainSpec {
            kind,
            placement,
            n_mb: 8,
            n_dp: 2,
            dp: DataParallelism::Unsharded,
            optimizer: bfpp::train::optim::OptimizerKind::sgd(LR),
            half_comms: false,
        };
        let stages = build_mlp_stages(6, 8, 3, placement.num_stages(), 5);
        let r = run_batch(&spec, stages, &inputs, &targets);
        match &reference {
            None => reference = Some(r.gradients),
            Some(ref_grads) => {
                for (a, b) in ref_grads.iter().zip(&r.gradients) {
                    assert_eq!(a, b, "{kind}: gradient mismatch");
                }
            }
        }
    }
}

#[test]
fn transformer_blocks_match_serial_through_the_pipeline() {
    // Real attention + MLP stages (the paper's layer structure), run
    // breadth-first with fully sharded weights on threads, must track the
    // serial reference exactly.
    use bfpp::train::builder::build_transformer_stages;
    let placement = Placement::looping(2, 2);
    let stages = build_transformer_stages(6, placement.num_stages(), true, 77);
    // One 4-token sequence per micro-batch, hidden size 6.
    let (inputs, targets) = synthetic_batch(6, 6, 2 * 4, 4, 55);
    let serial = run_serial(stages.clone(), &inputs, &targets, 2, LR);
    let spec = TrainSpec {
        kind: ScheduleKind::BreadthFirst,
        placement,
        n_mb: 4,
        n_dp: 2,
        dp: DataParallelism::FullySharded,
        optimizer: bfpp::train::optim::OptimizerKind::sgd(LR),
        half_comms: false,
    };
    let piped = run_batch(&spec, stages, &inputs, &targets);
    assert_eq!(piped.losses, serial.losses);
    let diff = max_weight_diff(&piped.stages, &serial.stages);
    assert!(diff < 1e-5, "attention stages diverged by {diff}");
}

#[test]
fn multi_step_training_stays_in_sync() {
    // Not just one batch: five consecutive steps, pipelined vs serial.
    let placement = Placement::looping(2, 2);
    let (inputs, targets) = data(4, 2);
    let mut piped_stages = build_mlp_stages(6, 8, 3, 4, 17);
    let mut serial_stages = piped_stages.clone();
    let spec = TrainSpec {
        kind: ScheduleKind::BreadthFirst,
        placement,
        n_mb: 4,
        n_dp: 2,
        dp: DataParallelism::FullySharded,
        optimizer: bfpp::train::optim::OptimizerKind::sgd(LR),
        half_comms: false,
    };
    for step in 0..5 {
        let p = run_batch(&spec, piped_stages, &inputs, &targets);
        let s = run_serial(serial_stages, &inputs, &targets, 2, LR);
        assert_eq!(p.losses, s.losses, "step {step}");
        piped_stages = p.stages;
        serial_stages = s.stages;
        let diff = max_weight_diff(&piped_stages, &serial_stages);
        assert!(diff < 1e-4, "step {step}: diverged by {diff}");
    }
}
