//! Pins the paper's own worked numbers across crate boundaries — the
//! quantitative anchors of the reproduction.

use bfpp::analytic::intensity;
use bfpp::cluster::presets::{dgx1_v100, dgx_a100};
use bfpp::core::{Schedule, ScheduleKind};
use bfpp::model::presets::{bert_52b, bert_6_6b, gpt3, one_t};
use bfpp::parallel::Placement;

/// Appendix A.3: A100 hardware intensities.
#[test]
fn a100_hardware_intensities() {
    let c = dgx_a100(2);
    assert!((c.inter_node_intensity() - 6240.0).abs() < 1.0);
    assert!((c.intra_node_intensity() - 520.0).abs() < 1.0);
}

/// A.3.1: β̃_min = 4 on an A100 at S_seq = 2048.
#[test]
fn beta_min_tilde_a100() {
    let c = dgx_a100(2);
    let b = intensity::beta_min_tilde(&gpt3(), c.inter_node_intensity());
    assert_eq!(b, 4.0);
}

/// A.3.3: tensor-parallel intensities 3072 (GPT-3) and 6400 (1T) at
/// N_TP = 8.
#[test]
fn tensor_parallel_intensities() {
    assert_eq!(intensity::tensor(&gpt3(), 8), 3072.0);
    assert_eq!(intensity::tensor(&one_t(), 8), 6400.0);
}

/// Table 5.1 parameter counts: ~52 B and ~6.6 B.
#[test]
fn evaluation_model_sizes() {
    assert!((bert_52b().total_params() as f64 / 1e9 - 52.0).abs() < 1.0);
    assert!((bert_6_6b().total_params() as f64 / 1e9 - 6.6).abs() < 0.2);
}

/// §5.1: the evaluation cluster is 8 DGX-1 nodes = 64 V100s.
#[test]
fn evaluation_cluster_shape() {
    let c = dgx1_v100(8);
    assert_eq!(c.num_gpus(), 64);
    assert_eq!(c.node.gpus_per_node, 8);
    assert_eq!(c.node.gpu.peak_fp16_flops, 125e12);
}

/// Eqs. (3)/(7) as one statement across the whole schedule family: the
/// measured bubble equals (N_PP − 1)/(N_mb · N_loop).
#[test]
fn bubble_closed_form_all_schedules() {
    for kind in ScheduleKind::ALL {
        let (placement, n_loop) = if kind.supports_looping() {
            (Placement::looping(4, 4), 4u32)
        } else {
            (Placement::linear(4), 1u32)
        };
        let s = Schedule::generate(kind, placement, 8).unwrap();
        let t = s.exact_timing(1, 2);
        let expect = 3.0 / (8.0 * n_loop as f64);
        assert!(
            (t.bubble_overhead() - expect).abs() < 1e-9,
            "{kind}: {} vs {expect}",
            t.bubble_overhead()
        );
    }
}

/// §4.2: the paper's example — 128 layers on 64 pipeline devices
/// constrains the loop count to at most 2.
#[test]
fn trillion_parameter_loop_constraint() {
    let m = one_t();
    let n_pp = 64;
    let max_loop = m.num_layers / n_pp;
    assert_eq!(max_loop, 2);
    // And the corresponding placement is constructible.
    let p = Placement::looping(n_pp, max_loop);
    assert_eq!(p.num_stages(), 128);
    assert!(p.even_layers_per_stage(m.num_layers).is_some());
}

/// A.2.2 context: the 52 B model at β_min on the paper's cluster —
/// N_TP = 8, N_PP = 8, one sample per micro-batch — has β = 1/8.
#[test]
fn beta_min_on_evaluation_cluster() {
    use bfpp::parallel::{BatchConfig, DataParallelism, Grid, ParallelConfig};
    let cfg = ParallelConfig::new(
        Grid::new(1, 8, 8),
        Placement::looping(8, 8),
        BatchConfig::new(8, 1),
        DataParallelism::Unsharded,
    );
    assert!((cfg.batch_per_gpu() - 0.125).abs() < 1e-12);
    assert!(cfg.validate(&bert_52b(), &dgx1_v100(8)).is_ok());
}
