//! Offline stand-in for the `parking_lot` crate.
//!
//! Provides [`Mutex`] and [`Condvar`] with `parking_lot`'s ergonomics
//! (no lock poisoning, `Condvar::wait(&mut guard)`) implemented over
//! `std::sync`. Only the surface this workspace uses is covered.

use std::ops::{Deref, DerefMut};
use std::sync;
use std::time::Duration;

/// A mutual-exclusion lock whose `lock` never fails: a poisoned std
/// mutex (a holder panicked) is recovered into its inner state, which is
/// exactly `parking_lot`'s behavior of not tracking poisoning at all.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

/// RAII guard of a locked [`Mutex`].
///
/// Holds the std guard in an `Option` so [`Condvar::wait`] can move it
/// out and back while the caller keeps a single `&mut` borrow.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    guard: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard { guard: Some(guard) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present outside wait")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present outside wait")
    }
}

/// Whether a [`Condvar::wait_for`] returned because of a timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable with `parking_lot`'s `wait(&mut guard)` shape.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard's lock and blocks until notified;
    /// the lock is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.guard.take().expect("guard present outside wait");
        let reacquired = match self.inner.wait(inner) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.guard = Some(reacquired);
    }

    /// As [`Condvar::wait`], but gives up after `timeout`: the lock is
    /// re-acquired and the returned [`WaitTimeoutResult`] says whether
    /// the wait timed out (spurious wakeups are possible either way, as
    /// with `std`; callers must re-check their predicate).
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.guard.take().expect("guard present outside wait");
        let (reacquired, result) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(poisoned) => {
                let (g, r) = poisoned.into_inner();
                (g, r)
            }
        };
        guard.guard = Some(reacquired);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all blocked waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::{Condvar, Mutex};
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn wait_and_notify_round_trip() {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = Arc::clone(&shared);
        let waiter = thread::spawn(move || {
            let (lock, cv) = &*s2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            true
        });
        {
            let (lock, cv) = &*shared;
            *lock.lock() = true;
            cv.notify_all();
        }
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn wait_for_times_out_without_notification() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, std::time::Duration::from_millis(10));
        assert!(r.timed_out());
        // The guard is live again after the timed-out wait.
        drop(g);
        assert_eq!(*m.lock(), ());
    }

    #[test]
    fn wait_for_returns_promptly_when_notified() {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = Arc::clone(&shared);
        let waiter = thread::spawn(move || {
            let (lock, cv) = &*s2;
            let mut ready = lock.lock();
            while !*ready {
                let r = cv.wait_for(&mut ready, std::time::Duration::from_secs(30));
                assert!(!r.timed_out(), "notification must arrive well within 30s");
            }
            true
        });
        {
            let (lock, cv) = &*shared;
            *lock.lock() = true;
            cv.notify_all();
        }
        assert!(waiter.join().unwrap());
    }
}
