//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace uses — the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, [`collection::vec`], [`sample::select`], [`any`], the
//! [`proptest!`] macro and the `prop_assert*` macros — with a
//! deterministic per-case RNG and **no shrinking**: a failing case
//! panics with the standard assertion message. Case sequences are fixed
//! across runs (seeded by case index), so failures reproduce exactly.

use std::ops::{Range, RangeInclusive};

/// Deterministic RNG handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct StubRng {
    state: u64,
}

impl StubRng {
    /// Creates a generator for one test case.
    pub fn new(seed: u64) -> Self {
        StubRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        self.next_u64() % bound
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of values of type `Value` (no shrinking in the stub).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StubRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Generates an intermediate value, builds a second strategy from
    /// it, and draws from that.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { base: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StubRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut StubRng) -> S2::Value {
        let mid = self.base.generate(rng);
        (self.f)(mid).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StubRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StubRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StubRng) -> $t {
                assert!(self.start() <= self.end(), "empty range");
                let span = (*self.end() as u128 - *self.start() as u128 + 1) as u64;
                self.start() + rng.below(span) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StubRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut StubRng) -> f32 {
        assert!(self.start < self.end, "empty range");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StubRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Types with a canonical strategy (subset of proptest's `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StubRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StubRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut StubRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut StubRng) -> u32 {
        rng.next_u64() as u32
    }
}

/// The canonical strategy of an [`Arbitrary`] type.
#[derive(Debug, Clone, Default)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StubRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy yielding any value of `T` (subset: `bool` and small ints).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, StubRng};
    use std::ops::{Range, RangeInclusive};

    /// A length distribution for [`vec()`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StubRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors whose elements come from `element` and
    /// whose length comes from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use super::{Strategy, StubRng};

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        choices: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut StubRng) -> T {
            self.choices[rng.below(self.choices.len() as u64) as usize].clone()
        }
    }

    /// A strategy drawing uniformly from `choices`.
    ///
    /// # Panics
    ///
    /// Panics (at generation time) if `choices` is empty.
    pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
        Select { choices }
    }
}

/// Runner configuration (subset of proptest's).
pub mod test_runner {
    /// How many cases each property runs.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

/// Runs one property body over `config.cases` deterministic cases.
pub fn run_cases<F: FnMut(&mut StubRng)>(config: &test_runner::Config, mut body: F) {
    for case in 0..config.cases {
        let mut rng =
            StubRng::new(0xB5AD_4ECE_DA1C_E2A9 ^ (case as u64).wrapping_mul(0x2545_F491_4F6C_DD1D));
        body(&mut rng);
    }
}

/// The common imports of a proptest-based test file.
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy};
}

/// Asserts a condition inside a property (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Asserts equality inside a property (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Asserts inequality inside a property (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { .. }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with ($cfg) $($rest)*);
    };
    (@with ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                $crate::run_cases(&config, |rng| {
                    $(let $pat = $crate::Strategy::generate(&($strat), rng);)+
                    $body
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let cfg = ProptestConfig::with_cases(200);
        crate::run_cases(&cfg, |rng| {
            let (a, b) = (1u32..5, 10usize..=12).generate(rng);
            assert!((1..5).contains(&a));
            assert!((10..=12).contains(&b));
        });
    }

    #[test]
    fn combinators_compose() {
        let strat = (1u32..4)
            .prop_flat_map(|n| {
                (
                    Just(n),
                    crate::collection::vec(0u64..100, n as usize..=n as usize),
                )
            })
            .prop_map(|(n, v)| (n, v.len()));
        let cfg = ProptestConfig::with_cases(100);
        crate::run_cases(&cfg, |rng| {
            let (n, len) = strat.generate(rng);
            assert_eq!(n as usize, len);
        });
    }

    #[test]
    fn select_draws_from_choices() {
        let s = crate::sample::select(vec![2u32, 4, 8]);
        let cfg = ProptestConfig::with_cases(50);
        crate::run_cases(&cfg, |rng| {
            assert!([2, 4, 8].contains(&s.generate(rng)));
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself works end to end.
        #[test]
        fn macro_generates_cases((x, flag) in (0u32..10, any::<bool>()), y in 1u64..3) {
            prop_assert!(x < 10);
            prop_assert!(y == 1 || y == 2);
            prop_assert!(u64::from(flag) <= 1);
        }
    }
}
