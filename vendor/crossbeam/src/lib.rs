//! Offline stand-in for the `crossbeam` crate.
//!
//! Covers the surface this workspace uses: `channel::{unbounded,
//! Sender, Receiver}` (both endpoints cloneable, like crossbeam's) and
//! `thread::scope` (delegating to `std::thread::scope`, stable since
//! Rust 1.63). Channels wrap `std::sync::mpsc` with the receiver behind
//! a mutex so it can be shared; per-message cost is a lock acquisition,
//! which is irrelevant at this workspace's message granularity (whole
//! activation tensors).

/// MPMC channels.
pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    /// An error returned when sending on a disconnected channel.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// An error returned when receiving from an empty, disconnected
    /// channel.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// An error returned when a bounded-time receive gives up.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The wait expired with no message available.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// The sending end of an unbounded channel.
    #[derive(Debug)]
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, failing only if every receiver is gone.
        ///
        /// # Errors
        ///
        /// Returns [`SendError`] carrying the value back when the
        /// channel is disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// The receiving end of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value is available.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] when the channel is empty and every
        /// sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let rx = match self.inner.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            rx.recv().map_err(|_| RecvError)
        }

        /// Returns a value if one is immediately available.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] when no message is ready (the stub does
        /// not distinguish empty from disconnected).
        pub fn try_recv(&self) -> Result<T, RecvError> {
            let rx = match self.inner.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            rx.try_recv().map_err(|_| RecvError)
        }

        /// Blocks until a value is available or `timeout` elapses — the
        /// primitive bounded waits (watchdogs, bounded drops) build on.
        ///
        /// # Errors
        ///
        /// Returns [`RecvTimeoutError::Timeout`] when the wait expires
        /// and [`RecvTimeoutError::Disconnected`] when the channel is
        /// empty and every sender is gone.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let rx = match self.inner.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            rx.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender { inner: tx },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
            },
        )
    }
}

/// Scoped threads.
pub mod thread {
    /// Runs `f` with a scope in which borrowed-data threads can be
    /// spawned; all threads are joined before `scope` returns.
    /// Delegates to [`std::thread::scope`].
    pub fn scope<'env, F, T>(f: F) -> T
    where
        F: for<'scope> FnOnce(&'scope std::thread::Scope<'scope, 'env>) -> T,
    {
        std::thread::scope(f)
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;
    use std::thread;

    #[test]
    fn send_recv_across_threads() {
        let (tx, rx) = unbounded();
        let t = thread::spawn(move || {
            for i in 0..10 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        t.join().unwrap();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cloned_endpoints_share_the_channel() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        let rx2 = rx.clone();
        tx2.send(7u8).unwrap();
        assert_eq!(rx2.recv(), Ok(7));
        drop(tx);
        drop(tx2);
        assert!(rx.recv().is_err(), "disconnected channel must error");
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        use super::channel::RecvTimeoutError;
        use std::time::Duration;
        let (tx, rx) = unbounded();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err::<u8, _>(RecvTimeoutError::Timeout)
        );
        tx.send(9u8).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(9));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn scope_joins_borrowing_threads() {
        let data = [1u64, 2, 3];
        let total = super::thread::scope(|s| {
            let h = s.spawn(|| data.iter().sum::<u64>());
            h.join().unwrap()
        });
        assert_eq!(total, 6);
    }
}
