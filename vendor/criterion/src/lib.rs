//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset this workspace's benches use: [`Criterion`]
//! with its builder knobs, [`Bencher::iter`], benchmark groups with
//! per-input benchmarks, [`BenchmarkId`], [`Throughput`] and the
//! `criterion_group!` / `criterion_main!` macros. Instead of full
//! statistical sampling it runs each closure `sample_size` times after a
//! single warm-up call and prints the mean wall-clock time per
//! iteration, which is enough to compare configurations by hand and to
//! keep `cargo bench` compiling and running without network access.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measures one benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly and records the total elapsed time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One unmeasured call to touch caches and lazy statics.
        let _ = routine();
        let start = Instant::now();
        for _ in 0..self.iterations {
            let _ = routine();
        }
        self.elapsed = start.elapsed();
    }
}

/// How work per iteration is reported. Accepted and ignored by the stub.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A `group/function/parameter` benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many measured iterations each benchmark runs.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Accepted for API compatibility; the stub has no warm-up phase
    /// beyond one untimed call.
    #[must_use]
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for API compatibility; the stub's run length is
    /// `sample_size` iterations, not a time budget.
    #[must_use]
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Records the per-iteration work. Ignored by the stub.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs a named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, name);
        run_one(&label, self.criterion.sample_size, &mut f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        run_one(
            &label,
            self.criterion.sample_size,
            &mut |b: &mut Bencher| f(b, input),
        );
        self
    }

    /// Ends the group. A no-op in the stub.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, iterations: u64, f: &mut F) {
    let mut b = Bencher {
        iterations,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = if b.iterations > 0 {
        b.elapsed.as_nanos() / u128::from(b.iterations)
    } else {
        0
    };
    println!(
        "bench {label:<48} {per_iter:>12} ns/iter ({} iters)",
        b.iterations
    );
}

/// Declares a benchmark group as a function running each target.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `fn main` invoking each benchmark group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut calls = 0u64;
        let mut c = Criterion::default().sample_size(5);
        c.bench_function("count", |b| b.iter(|| calls += 1));
        // 5 measured + 1 warm-up call.
        assert_eq!(calls, 6);
    }

    #[test]
    fn group_runs_with_input() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Bytes(128));
        let mut total = 0u64;
        group.bench_with_input(BenchmarkId::new("sum", 3u32), &4u64, |b, &x| {
            b.iter(|| total += x)
        });
        group.finish();
        assert_eq!(total, 12);
    }

    fn target_a(c: &mut Criterion) {
        c.bench_function("a", |b| b.iter(|| 1 + 1));
    }

    criterion_group!(benches, target_a);

    #[test]
    fn macro_generated_group_runs() {
        benches();
    }
}
