//! Offline stand-in for the `rand` crate.
//!
//! This workspace pins its dependencies to in-tree stubs so it builds in
//! hermetic environments with no registry access. Only the API surface
//! the workspace actually uses is provided: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] /
//! [`Rng::gen`] over primitive ranges. The generator is xoshiro256++
//! seeded through SplitMix64 — high-quality, deterministic, and entirely
//! std-only. It is **not** the upstream `StdRng` stream; seeds produce
//! different (but equally well-distributed) sequences.

use std::ops::Range;

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[low, high)`.
    fn sample_range(rng: &mut dyn RngCore, range: &Range<Self>) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// One uniform draw.
    fn sample_standard(rng: &mut dyn RngCore) -> Self;
}

/// The raw 64-bit source every stub generator implements.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform draw from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, &range)
    }

    /// One uniform draw of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generator implementations.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ (Blackman & Vigna), the stub's standard generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Uniform f64 in `[0, 1)` from 53 random bits.
fn unit_f64(rng: &mut dyn RngCore) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleUniform for f64 {
    fn sample_range(rng: &mut dyn RngCore, range: &Range<f64>) -> f64 {
        assert!(range.start < range.end, "empty range");
        range.start + unit_f64(rng) * (range.end - range.start)
    }
}

impl SampleUniform for f32 {
    fn sample_range(rng: &mut dyn RngCore, range: &Range<f32>) -> f32 {
        assert!(range.start < range.end, "empty range");
        range.start + (unit_f64(rng) as f32) * (range.end - range.start)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut dyn RngCore, range: &Range<$t>) -> $t {
                assert!(range.start < range.end, "empty range");
                let span = (range.end as u128).wrapping_sub(range.start as u128) as u64;
                range.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i32, i64);

impl Standard for bool {
    fn sample_standard(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard(rng: &mut dyn RngCore) -> f64 {
        unit_f64(rng)
    }
}

impl Standard for u64 {
    fn sample_standard(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let draws: Vec<f64> = (0..4000).map(|_| rng.gen_range(0.0f64..1.0)).collect();
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
        assert!(draws.iter().any(|x| *x < 0.1));
        assert!(draws.iter().any(|x| *x > 0.9));
    }
}
