//! # bfpp — Breadth-First Pipeline Parallelism
//!
//! Facade crate re-exporting the whole workspace. See the README for an
//! overview and the `examples/` directory for runnable entry points.

pub use bfpp_analytic as analytic;
pub use bfpp_cluster as cluster;
pub use bfpp_collectives as collectives;
pub use bfpp_core as core;
pub use bfpp_exec as exec;
pub use bfpp_model as model;
pub use bfpp_parallel as parallel;
pub use bfpp_planner as planner;
pub use bfpp_sim as sim;
pub use bfpp_train as train;
