//! The `bfpp` command-line tool: simulate, search and visualize
//! pipeline-parallel training configurations from the terminal.
//!
//! ```text
//! bfpp simulate --model 52b --dp 4 --tp 2 --pp 8 --loops 8 --mb 12 \
//!               --smb 1 --sharding fs --schedule bf
//! bfpp search   --model 52b --batch 48 [--ethernet]
//! bfpp viz      --pp 4 --loops 4 --mb 8
//! ```

use std::collections::HashMap;
use std::process::ExitCode;

use bfpp::analytic::tradeoff::TradeoffModel;
use bfpp::cluster::presets;
use bfpp::cluster::ClusterSpec;
use bfpp::core::ScheduleKind;
use bfpp::exec::search::{best_config, Method, SearchOptions};
use bfpp::exec::{breakdown, lower, simulate, KernelModel, OverlapConfig};
use bfpp::model::presets::by_name;
use bfpp::parallel::{BatchConfig, DataParallelism, Grid, ParallelConfig, Placement};
use bfpp_bench::figures::schedule_unit_timelines;

fn usage() -> &'static str {
    "usage:
  bfpp simulate --model <52b|6.6b|gpt3|1t> --dp N --tp N --pp N [--loops N]
                [--mb N] [--smb N] [--sharding <dp0|ps|fs>]
                [--schedule <gpipe|1f1b|df|bf>] [--nodes N] [--ethernet]
                [--no-overlap]
  bfpp search   --model <name> --batch B [--nodes N] [--ethernet]
  bfpp plan     --model <name> --gpus N   (training time/cost per method)
  bfpp viz      [--pp N] [--loops N] [--mb N]"
}

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(name) = a.strip_prefix("--") {
            if matches!(name, "ethernet" | "no-overlap") {
                flags.insert(name.to_string(), "true".to_string());
                i += 1;
            } else {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("--{name} needs a value"))?;
                flags.insert(name.to_string(), value.clone());
                i += 2;
            }
        } else {
            return Err(format!("unexpected argument {a}"));
        }
    }
    Ok(flags)
}

fn get_u32(flags: &HashMap<String, String>, key: &str, default: u32) -> Result<u32, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{key} must be a number")),
    }
}

fn cluster_for(flags: &HashMap<String, String>) -> Result<ClusterSpec, String> {
    let nodes = get_u32(flags, "nodes", 8)?;
    Ok(if flags.contains_key("ethernet") {
        presets::dgx1_v100_ethernet(nodes)
    } else {
        presets::dgx1_v100(nodes)
    })
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        return Err(usage().to_string());
    };
    let flags = parse_flags(rest)?;
    match cmd.as_str() {
        "simulate" => cmd_simulate(&flags),
        "search" => cmd_search(&flags),
        "plan" => cmd_plan(&flags),
        "viz" => cmd_viz(&flags),
        other => Err(format!("unknown command {other}\n{}", usage())),
    }
}

fn cmd_simulate(flags: &HashMap<String, String>) -> Result<(), String> {
    let model_name = flags.get("model").cloned().unwrap_or_else(|| "52b".into());
    let model = by_name(&model_name).ok_or_else(|| format!("unknown model {model_name}"))?;
    let cluster = cluster_for(flags)?;
    let n_dp = get_u32(flags, "dp", 1)?;
    let n_tp = get_u32(flags, "tp", 8)?;
    let n_pp = get_u32(flags, "pp", 8)?;
    let n_loop = get_u32(flags, "loops", 1)?;
    let n_mb = get_u32(flags, "mb", n_pp)?;
    let s_mb = get_u32(flags, "smb", 1)?;
    let sharding = match flags.get("sharding").map(String::as_str) {
        None | Some("dp0") => DataParallelism::Unsharded,
        Some("ps") => DataParallelism::PartiallySharded,
        Some("fs") => DataParallelism::FullySharded,
        Some(x) => return Err(format!("unknown sharding {x}")),
    };
    let schedule = match flags.get("schedule").map(String::as_str) {
        None | Some("bf") => ScheduleKind::BreadthFirst,
        Some("df") => ScheduleKind::DepthFirst,
        Some("gpipe") => ScheduleKind::GPipe,
        Some("1f1b") => ScheduleKind::OneFOneB,
        Some(x) => return Err(format!("unknown schedule {x}")),
    };
    let overlap = if flags.contains_key("no-overlap") {
        OverlapConfig::none()
    } else {
        OverlapConfig::full()
    };
    let cfg = ParallelConfig::new(
        Grid::new(n_dp, n_tp, n_pp),
        Placement::looping(n_pp, n_loop),
        BatchConfig::new(n_mb, s_mb),
        sharding,
    );
    let kernel = KernelModel::v100();
    let m =
        simulate(&model, &cluster, &cfg, schedule, overlap, &kernel).map_err(|e| e.to_string())?;
    println!("model    : {model}");
    println!("cluster  : {cluster}");
    println!(
        "config   : {} | {} | {} | {}",
        cfg.grid, cfg.placement, cfg.batch, cfg.dp
    );
    println!("schedule : {schedule}");
    println!("beta     : {:.3} samples/GPU", cfg.batch_per_gpu());
    println!("batch    : {:.3} ms", m.batch_seconds * 1e3);
    println!(
        "through  : {:.2} Tflop/s/GPU ({:.1}% of peak)",
        m.tflops_per_gpu,
        m.utilization * 100.0
    );
    println!(
        "memory   : {:.2} GiB (fits: {})",
        m.memory_gib(),
        m.fits(cluster.min_memory_bytes())
    );
    let lowered =
        lower(&model, &cluster, &cfg, schedule, overlap, &kernel).map_err(|e| e.to_string())?;
    let t = lowered.graph.solve().expect("acyclic");
    let b = breakdown(&lowered, &t);
    println!(
        "breakdown: kernels {:.1}% | inline comm {:.1}% | idle {:.1}% (overlapped dp {:.1} ms, pp {:.1} ms)",
        100.0 * b.kernel_s / b.makespan_s,
        100.0 * b.inline_comm_s / b.makespan_s,
        100.0 * b.idle_s / b.makespan_s,
        b.dp_stream_s * 1e3,
        b.pp_stream_s * 1e3,
    );
    Ok(())
}

fn cmd_search(flags: &HashMap<String, String>) -> Result<(), String> {
    let model_name = flags.get("model").cloned().unwrap_or_else(|| "52b".into());
    let model = by_name(&model_name).ok_or_else(|| format!("unknown model {model_name}"))?;
    let cluster = cluster_for(flags)?;
    let batch = get_u32(flags, "batch", 48)? as u64;
    let kernel = KernelModel::v100();
    let opts = SearchOptions::default();
    println!(
        "best configurations for {} at batch {batch} on {}:",
        model.name, cluster.name
    );
    for method in Method::ALL {
        match best_config(&model, &cluster, method, batch, &kernel, &opts) {
            Some(r) => println!(
                "{:>14}: {:>6.2} Tflop/s/GPU  ({} | {} | {} | {} | {:.1} GiB)",
                method.label(),
                r.measurement.tflops_per_gpu,
                r.kind,
                r.cfg.grid,
                r.cfg.placement,
                r.cfg.dp,
                r.measurement.memory_gib(),
            ),
            None => println!("{:>14}: no feasible configuration", method.label()),
        }
    }
    Ok(())
}

fn cmd_plan(flags: &HashMap<String, String>) -> Result<(), String> {
    let model_name = flags.get("model").cloned().unwrap_or_else(|| "52b".into());
    let model = by_name(&model_name).ok_or_else(|| format!("unknown model {model_name}"))?;
    let gpus = get_u32(flags, "gpus", 4096)?;
    let cluster = presets::dgx1_v100(8);
    let kernel = KernelModel::v100();
    let tradeoff = if model_name.contains("52") {
        TradeoffModel::paper_52b(&model, cluster.node.gpu.peak_fp16_flops)
    } else {
        TradeoffModel::paper_6_6b(&model, cluster.node.gpu.peak_fp16_flops)
    };
    println!(
        "planning {} on {gpus} V100s (B_crit = {:.0} samples); measuring reference curves...",
        model.name, tradeoff.b_crit_samples
    );
    let opts = SearchOptions::default();
    for method in Method::ALL {
        let mut points = Vec::new();
        for batch in [8u64, 32, 128, 512] {
            if let Some(r) = best_config(&model, &cluster, method, batch, &kernel, &opts) {
                points.push(bfpp::analytic::tradeoff::OperatingPoint {
                    beta: batch as f64 / cluster.num_gpus() as f64,
                    utilization: r.measurement.utilization,
                });
            }
        }
        if let Some(p) = tradeoff.frontier(&points, &[gpus]).first() {
            println!(
                "{:>14}: {:>7.1} days, {:>9.0} GPU-days (beta {:.3})",
                method.label(),
                p.time_days,
                p.cost_gpu_days,
                p.beta
            );
        }
    }
    Ok(())
}

fn cmd_viz(flags: &HashMap<String, String>) -> Result<(), String> {
    let n_pp = get_u32(flags, "pp", 4)?;
    let n_loop = get_u32(flags, "loops", 4)?;
    let n_mb = get_u32(flags, "mb", 8)?;
    print!("{}", schedule_unit_timelines(n_pp, n_loop, n_mb));
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
