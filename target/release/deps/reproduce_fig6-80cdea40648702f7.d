/root/repo/target/release/deps/reproduce_fig6-80cdea40648702f7.d: crates/bench/src/bin/reproduce_fig6.rs

/root/repo/target/release/deps/reproduce_fig6-80cdea40648702f7: crates/bench/src/bin/reproduce_fig6.rs

crates/bench/src/bin/reproduce_fig6.rs:
