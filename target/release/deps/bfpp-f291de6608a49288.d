/root/repo/target/release/deps/bfpp-f291de6608a49288.d: src/lib.rs

/root/repo/target/release/deps/libbfpp-f291de6608a49288.rlib: src/lib.rs

/root/repo/target/release/deps/libbfpp-f291de6608a49288.rmeta: src/lib.rs

src/lib.rs:
