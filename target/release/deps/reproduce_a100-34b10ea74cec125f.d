/root/repo/target/release/deps/reproduce_a100-34b10ea74cec125f.d: crates/bench/src/bin/reproduce_a100.rs

/root/repo/target/release/deps/reproduce_a100-34b10ea74cec125f: crates/bench/src/bin/reproduce_a100.rs

crates/bench/src/bin/reproduce_a100.rs:
