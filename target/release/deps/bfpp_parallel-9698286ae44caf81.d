/root/repo/target/release/deps/bfpp_parallel-9698286ae44caf81.d: crates/parallel/src/lib.rs crates/parallel/src/batch.rs crates/parallel/src/dp.rs crates/parallel/src/grid.rs crates/parallel/src/placement.rs crates/parallel/src/util.rs

/root/repo/target/release/deps/libbfpp_parallel-9698286ae44caf81.rlib: crates/parallel/src/lib.rs crates/parallel/src/batch.rs crates/parallel/src/dp.rs crates/parallel/src/grid.rs crates/parallel/src/placement.rs crates/parallel/src/util.rs

/root/repo/target/release/deps/libbfpp_parallel-9698286ae44caf81.rmeta: crates/parallel/src/lib.rs crates/parallel/src/batch.rs crates/parallel/src/dp.rs crates/parallel/src/grid.rs crates/parallel/src/placement.rs crates/parallel/src/util.rs

crates/parallel/src/lib.rs:
crates/parallel/src/batch.rs:
crates/parallel/src/dp.rs:
crates/parallel/src/grid.rs:
crates/parallel/src/placement.rs:
crates/parallel/src/util.rs:
