/root/repo/target/release/deps/bfpp_cluster-2b56a6bf5cdce4ba.d: crates/cluster/src/lib.rs crates/cluster/src/cluster.rs crates/cluster/src/gpu.rs crates/cluster/src/network.rs crates/cluster/src/node.rs crates/cluster/src/presets.rs

/root/repo/target/release/deps/libbfpp_cluster-2b56a6bf5cdce4ba.rlib: crates/cluster/src/lib.rs crates/cluster/src/cluster.rs crates/cluster/src/gpu.rs crates/cluster/src/network.rs crates/cluster/src/node.rs crates/cluster/src/presets.rs

/root/repo/target/release/deps/libbfpp_cluster-2b56a6bf5cdce4ba.rmeta: crates/cluster/src/lib.rs crates/cluster/src/cluster.rs crates/cluster/src/gpu.rs crates/cluster/src/network.rs crates/cluster/src/node.rs crates/cluster/src/presets.rs

crates/cluster/src/lib.rs:
crates/cluster/src/cluster.rs:
crates/cluster/src/gpu.rs:
crates/cluster/src/network.rs:
crates/cluster/src/node.rs:
crates/cluster/src/presets.rs:
