/root/repo/target/release/deps/reproduce_fig3-ede93f9ffef16057.d: crates/bench/src/bin/reproduce_fig3.rs

/root/repo/target/release/deps/reproduce_fig3-ede93f9ffef16057: crates/bench/src/bin/reproduce_fig3.rs

crates/bench/src/bin/reproduce_fig3.rs:
