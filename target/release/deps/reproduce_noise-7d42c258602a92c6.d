/root/repo/target/release/deps/reproduce_noise-7d42c258602a92c6.d: crates/bench/src/bin/reproduce_noise.rs

/root/repo/target/release/deps/reproduce_noise-7d42c258602a92c6: crates/bench/src/bin/reproduce_noise.rs

crates/bench/src/bin/reproduce_noise.rs:
