/root/repo/target/release/deps/reproduce_fig7-9d06f4f3124f26b3.d: crates/bench/src/bin/reproduce_fig7.rs

/root/repo/target/release/deps/reproduce_fig7-9d06f4f3124f26b3: crates/bench/src/bin/reproduce_fig7.rs

crates/bench/src/bin/reproduce_fig7.rs:
