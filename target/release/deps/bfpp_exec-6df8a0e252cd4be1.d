/root/repo/target/release/deps/bfpp_exec-6df8a0e252cd4be1.d: crates/exec/src/lib.rs crates/exec/src/breakdown.rs crates/exec/src/kernel.rs crates/exec/src/lower.rs crates/exec/src/measure.rs crates/exec/src/memory.rs crates/exec/src/overlap.rs crates/exec/src/search.rs

/root/repo/target/release/deps/libbfpp_exec-6df8a0e252cd4be1.rlib: crates/exec/src/lib.rs crates/exec/src/breakdown.rs crates/exec/src/kernel.rs crates/exec/src/lower.rs crates/exec/src/measure.rs crates/exec/src/memory.rs crates/exec/src/overlap.rs crates/exec/src/search.rs

/root/repo/target/release/deps/libbfpp_exec-6df8a0e252cd4be1.rmeta: crates/exec/src/lib.rs crates/exec/src/breakdown.rs crates/exec/src/kernel.rs crates/exec/src/lower.rs crates/exec/src/measure.rs crates/exec/src/memory.rs crates/exec/src/overlap.rs crates/exec/src/search.rs

crates/exec/src/lib.rs:
crates/exec/src/breakdown.rs:
crates/exec/src/kernel.rs:
crates/exec/src/lower.rs:
crates/exec/src/measure.rs:
crates/exec/src/memory.rs:
crates/exec/src/overlap.rs:
crates/exec/src/search.rs:
