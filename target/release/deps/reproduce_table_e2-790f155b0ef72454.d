/root/repo/target/release/deps/reproduce_table_e2-790f155b0ef72454.d: crates/bench/src/bin/reproduce_table_e2.rs

/root/repo/target/release/deps/reproduce_table_e2-790f155b0ef72454: crates/bench/src/bin/reproduce_table_e2.rs

crates/bench/src/bin/reproduce_table_e2.rs:
