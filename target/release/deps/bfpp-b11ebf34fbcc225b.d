/root/repo/target/release/deps/bfpp-b11ebf34fbcc225b.d: src/bin/bfpp.rs

/root/repo/target/release/deps/bfpp-b11ebf34fbcc225b: src/bin/bfpp.rs

src/bin/bfpp.rs:
