/root/repo/target/release/deps/bfpp_collectives-d3c3f9e4ccbfcc63.d: crates/collectives/src/lib.rs crates/collectives/src/cost.rs crates/collectives/src/thread.rs

/root/repo/target/release/deps/libbfpp_collectives-d3c3f9e4ccbfcc63.rlib: crates/collectives/src/lib.rs crates/collectives/src/cost.rs crates/collectives/src/thread.rs

/root/repo/target/release/deps/libbfpp_collectives-d3c3f9e4ccbfcc63.rmeta: crates/collectives/src/lib.rs crates/collectives/src/cost.rs crates/collectives/src/thread.rs

crates/collectives/src/lib.rs:
crates/collectives/src/cost.rs:
crates/collectives/src/thread.rs:
