/root/repo/target/release/deps/bfpp_bench-a9b051925cecfa11.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/report.rs crates/bench/src/tables.rs

/root/repo/target/release/deps/libbfpp_bench-a9b051925cecfa11.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/report.rs crates/bench/src/tables.rs

/root/repo/target/release/deps/libbfpp_bench-a9b051925cecfa11.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/report.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/report.rs:
crates/bench/src/tables.rs:
