/root/repo/target/release/deps/reproduce_fig1-8eadf8d6689d9240.d: crates/bench/src/bin/reproduce_fig1.rs

/root/repo/target/release/deps/reproduce_fig1-8eadf8d6689d9240: crates/bench/src/bin/reproduce_fig1.rs

crates/bench/src/bin/reproduce_fig1.rs:
