/root/repo/target/release/deps/bfpp-8cb0fc35f1ecc0b5.d: src/bin/bfpp.rs

/root/repo/target/release/deps/bfpp-8cb0fc35f1ecc0b5: src/bin/bfpp.rs

src/bin/bfpp.rs:
