/root/repo/target/release/deps/bfpp_model-190ba8e1982f09a5.d: crates/model/src/lib.rs crates/model/src/memory.rs crates/model/src/presets.rs crates/model/src/transformer.rs

/root/repo/target/release/deps/libbfpp_model-190ba8e1982f09a5.rlib: crates/model/src/lib.rs crates/model/src/memory.rs crates/model/src/presets.rs crates/model/src/transformer.rs

/root/repo/target/release/deps/libbfpp_model-190ba8e1982f09a5.rmeta: crates/model/src/lib.rs crates/model/src/memory.rs crates/model/src/presets.rs crates/model/src/transformer.rs

crates/model/src/lib.rs:
crates/model/src/memory.rs:
crates/model/src/presets.rs:
crates/model/src/transformer.rs:
