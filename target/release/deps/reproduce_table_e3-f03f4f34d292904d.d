/root/repo/target/release/deps/reproduce_table_e3-f03f4f34d292904d.d: crates/bench/src/bin/reproduce_table_e3.rs

/root/repo/target/release/deps/reproduce_table_e3-f03f4f34d292904d: crates/bench/src/bin/reproduce_table_e3.rs

crates/bench/src/bin/reproduce_table_e3.rs:
