/root/repo/target/release/deps/reproduce_fig5-fbb542a6e9b3e298.d: crates/bench/src/bin/reproduce_fig5.rs

/root/repo/target/release/deps/reproduce_fig5-fbb542a6e9b3e298: crates/bench/src/bin/reproduce_fig5.rs

crates/bench/src/bin/reproduce_fig5.rs:
