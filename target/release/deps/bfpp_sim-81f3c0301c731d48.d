/root/repo/target/release/deps/bfpp_sim-81f3c0301c731d48.d: crates/sim/src/lib.rs crates/sim/src/critical_path.rs crates/sim/src/graph.rs crates/sim/src/perturb.rs crates/sim/src/solver.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libbfpp_sim-81f3c0301c731d48.rlib: crates/sim/src/lib.rs crates/sim/src/critical_path.rs crates/sim/src/graph.rs crates/sim/src/perturb.rs crates/sim/src/solver.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libbfpp_sim-81f3c0301c731d48.rmeta: crates/sim/src/lib.rs crates/sim/src/critical_path.rs crates/sim/src/graph.rs crates/sim/src/perturb.rs crates/sim/src/solver.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/critical_path.rs:
crates/sim/src/graph.rs:
crates/sim/src/perturb.rs:
crates/sim/src/solver.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
