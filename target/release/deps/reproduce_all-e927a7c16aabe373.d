/root/repo/target/release/deps/reproduce_all-e927a7c16aabe373.d: crates/bench/src/bin/reproduce_all.rs

/root/repo/target/release/deps/reproduce_all-e927a7c16aabe373: crates/bench/src/bin/reproduce_all.rs

crates/bench/src/bin/reproduce_all.rs:
