/root/repo/target/release/deps/bfpp-5bc673b9e517a8e7.d: src/lib.rs

/root/repo/target/release/deps/libbfpp-5bc673b9e517a8e7.rlib: src/lib.rs

/root/repo/target/release/deps/libbfpp-5bc673b9e517a8e7.rmeta: src/lib.rs

src/lib.rs:
