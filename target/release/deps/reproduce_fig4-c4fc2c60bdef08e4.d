/root/repo/target/release/deps/reproduce_fig4-c4fc2c60bdef08e4.d: crates/bench/src/bin/reproduce_fig4.rs

/root/repo/target/release/deps/reproduce_fig4-c4fc2c60bdef08e4: crates/bench/src/bin/reproduce_fig4.rs

crates/bench/src/bin/reproduce_fig4.rs:
