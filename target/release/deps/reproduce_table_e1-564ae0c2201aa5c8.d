/root/repo/target/release/deps/reproduce_table_e1-564ae0c2201aa5c8.d: crates/bench/src/bin/reproduce_table_e1.rs

/root/repo/target/release/deps/reproduce_table_e1-564ae0c2201aa5c8: crates/bench/src/bin/reproduce_table_e1.rs

crates/bench/src/bin/reproduce_table_e1.rs:
