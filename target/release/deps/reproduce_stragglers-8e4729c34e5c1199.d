/root/repo/target/release/deps/reproduce_stragglers-8e4729c34e5c1199.d: crates/bench/src/bin/reproduce_stragglers.rs

/root/repo/target/release/deps/reproduce_stragglers-8e4729c34e5c1199: crates/bench/src/bin/reproduce_stragglers.rs

crates/bench/src/bin/reproduce_stragglers.rs:
