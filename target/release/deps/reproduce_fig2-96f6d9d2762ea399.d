/root/repo/target/release/deps/reproduce_fig2-96f6d9d2762ea399.d: crates/bench/src/bin/reproduce_fig2.rs

/root/repo/target/release/deps/reproduce_fig2-96f6d9d2762ea399: crates/bench/src/bin/reproduce_fig2.rs

crates/bench/src/bin/reproduce_fig2.rs:
