/root/repo/target/release/deps/bfpp_bench-c79cf2bd4b46c1ed.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/report.rs crates/bench/src/robustness.rs crates/bench/src/tables.rs

/root/repo/target/release/deps/libbfpp_bench-c79cf2bd4b46c1ed.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/report.rs crates/bench/src/robustness.rs crates/bench/src/tables.rs

/root/repo/target/release/deps/libbfpp_bench-c79cf2bd4b46c1ed.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/report.rs crates/bench/src/robustness.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/report.rs:
crates/bench/src/robustness.rs:
crates/bench/src/tables.rs:
