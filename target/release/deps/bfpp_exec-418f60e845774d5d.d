/root/repo/target/release/deps/bfpp_exec-418f60e845774d5d.d: crates/exec/src/lib.rs crates/exec/src/breakdown.rs crates/exec/src/candidates.rs crates/exec/src/kernel.rs crates/exec/src/lower.rs crates/exec/src/measure.rs crates/exec/src/memory.rs crates/exec/src/overlap.rs crates/exec/src/prune.rs crates/exec/src/search.rs

/root/repo/target/release/deps/libbfpp_exec-418f60e845774d5d.rlib: crates/exec/src/lib.rs crates/exec/src/breakdown.rs crates/exec/src/candidates.rs crates/exec/src/kernel.rs crates/exec/src/lower.rs crates/exec/src/measure.rs crates/exec/src/memory.rs crates/exec/src/overlap.rs crates/exec/src/prune.rs crates/exec/src/search.rs

/root/repo/target/release/deps/libbfpp_exec-418f60e845774d5d.rmeta: crates/exec/src/lib.rs crates/exec/src/breakdown.rs crates/exec/src/candidates.rs crates/exec/src/kernel.rs crates/exec/src/lower.rs crates/exec/src/measure.rs crates/exec/src/memory.rs crates/exec/src/overlap.rs crates/exec/src/prune.rs crates/exec/src/search.rs

crates/exec/src/lib.rs:
crates/exec/src/breakdown.rs:
crates/exec/src/candidates.rs:
crates/exec/src/kernel.rs:
crates/exec/src/lower.rs:
crates/exec/src/measure.rs:
crates/exec/src/memory.rs:
crates/exec/src/overlap.rs:
crates/exec/src/prune.rs:
crates/exec/src/search.rs:
