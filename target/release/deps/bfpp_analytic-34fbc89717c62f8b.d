/root/repo/target/release/deps/bfpp_analytic-34fbc89717c62f8b.d: crates/analytic/src/lib.rs crates/analytic/src/efficiency.rs crates/analytic/src/intensity.rs crates/analytic/src/noise.rs crates/analytic/src/tradeoff.rs

/root/repo/target/release/deps/libbfpp_analytic-34fbc89717c62f8b.rlib: crates/analytic/src/lib.rs crates/analytic/src/efficiency.rs crates/analytic/src/intensity.rs crates/analytic/src/noise.rs crates/analytic/src/tradeoff.rs

/root/repo/target/release/deps/libbfpp_analytic-34fbc89717c62f8b.rmeta: crates/analytic/src/lib.rs crates/analytic/src/efficiency.rs crates/analytic/src/intensity.rs crates/analytic/src/noise.rs crates/analytic/src/tradeoff.rs

crates/analytic/src/lib.rs:
crates/analytic/src/efficiency.rs:
crates/analytic/src/intensity.rs:
crates/analytic/src/noise.rs:
crates/analytic/src/tradeoff.rs:
