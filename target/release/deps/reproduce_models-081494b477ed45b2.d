/root/repo/target/release/deps/reproduce_models-081494b477ed45b2.d: crates/bench/src/bin/reproduce_models.rs

/root/repo/target/release/deps/reproduce_models-081494b477ed45b2: crates/bench/src/bin/reproduce_models.rs

crates/bench/src/bin/reproduce_models.rs:
