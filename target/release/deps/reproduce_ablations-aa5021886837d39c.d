/root/repo/target/release/deps/reproduce_ablations-aa5021886837d39c.d: crates/bench/src/bin/reproduce_ablations.rs

/root/repo/target/release/deps/reproduce_ablations-aa5021886837d39c: crates/bench/src/bin/reproduce_ablations.rs

crates/bench/src/bin/reproduce_ablations.rs:
