/root/repo/target/release/deps/search-cd2fc778ed63588a.d: crates/bench/benches/search.rs

/root/repo/target/release/deps/search-cd2fc778ed63588a: crates/bench/benches/search.rs

crates/bench/benches/search.rs:
