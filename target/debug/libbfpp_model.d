/root/repo/target/debug/libbfpp_model.rlib: /root/repo/crates/model/src/lib.rs /root/repo/crates/model/src/memory.rs /root/repo/crates/model/src/presets.rs /root/repo/crates/model/src/transformer.rs
