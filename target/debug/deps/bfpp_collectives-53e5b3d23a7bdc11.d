/root/repo/target/debug/deps/bfpp_collectives-53e5b3d23a7bdc11.d: crates/collectives/src/lib.rs crates/collectives/src/cost.rs crates/collectives/src/thread.rs

/root/repo/target/debug/deps/libbfpp_collectives-53e5b3d23a7bdc11.rlib: crates/collectives/src/lib.rs crates/collectives/src/cost.rs crates/collectives/src/thread.rs

/root/repo/target/debug/deps/libbfpp_collectives-53e5b3d23a7bdc11.rmeta: crates/collectives/src/lib.rs crates/collectives/src/cost.rs crates/collectives/src/thread.rs

crates/collectives/src/lib.rs:
crates/collectives/src/cost.rs:
crates/collectives/src/thread.rs:
