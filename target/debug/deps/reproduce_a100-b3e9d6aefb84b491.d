/root/repo/target/debug/deps/reproduce_a100-b3e9d6aefb84b491.d: crates/bench/src/bin/reproduce_a100.rs

/root/repo/target/debug/deps/reproduce_a100-b3e9d6aefb84b491: crates/bench/src/bin/reproduce_a100.rs

crates/bench/src/bin/reproduce_a100.rs:
