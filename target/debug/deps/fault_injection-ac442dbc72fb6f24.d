/root/repo/target/debug/deps/fault_injection-ac442dbc72fb6f24.d: crates/collectives/tests/fault_injection.rs

/root/repo/target/debug/deps/fault_injection-ac442dbc72fb6f24: crates/collectives/tests/fault_injection.rs

crates/collectives/tests/fault_injection.rs:
