/root/repo/target/debug/deps/reproduce_fig5-5a3a5807bc686c5b.d: crates/bench/src/bin/reproduce_fig5.rs

/root/repo/target/debug/deps/reproduce_fig5-5a3a5807bc686c5b: crates/bench/src/bin/reproduce_fig5.rs

crates/bench/src/bin/reproduce_fig5.rs:
