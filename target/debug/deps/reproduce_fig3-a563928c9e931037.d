/root/repo/target/debug/deps/reproduce_fig3-a563928c9e931037.d: crates/bench/src/bin/reproduce_fig3.rs

/root/repo/target/debug/deps/reproduce_fig3-a563928c9e931037: crates/bench/src/bin/reproduce_fig3.rs

crates/bench/src/bin/reproduce_fig3.rs:
