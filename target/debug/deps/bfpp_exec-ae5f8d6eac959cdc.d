/root/repo/target/debug/deps/bfpp_exec-ae5f8d6eac959cdc.d: crates/exec/src/lib.rs crates/exec/src/breakdown.rs crates/exec/src/candidates.rs crates/exec/src/kernel.rs crates/exec/src/lower.rs crates/exec/src/measure.rs crates/exec/src/memory.rs crates/exec/src/overlap.rs crates/exec/src/prune.rs crates/exec/src/search.rs

/root/repo/target/debug/deps/libbfpp_exec-ae5f8d6eac959cdc.rmeta: crates/exec/src/lib.rs crates/exec/src/breakdown.rs crates/exec/src/candidates.rs crates/exec/src/kernel.rs crates/exec/src/lower.rs crates/exec/src/measure.rs crates/exec/src/memory.rs crates/exec/src/overlap.rs crates/exec/src/prune.rs crates/exec/src/search.rs

crates/exec/src/lib.rs:
crates/exec/src/breakdown.rs:
crates/exec/src/candidates.rs:
crates/exec/src/kernel.rs:
crates/exec/src/lower.rs:
crates/exec/src/measure.rs:
crates/exec/src/memory.rs:
crates/exec/src/overlap.rs:
crates/exec/src/prune.rs:
crates/exec/src/search.rs:
