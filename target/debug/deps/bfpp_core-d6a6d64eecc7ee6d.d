/root/repo/target/debug/deps/bfpp_core-d6a6d64eecc7ee6d.d: crates/core/src/lib.rs crates/core/src/action.rs crates/core/src/bubble.rs crates/core/src/cache.rs crates/core/src/generators.rs crates/core/src/greedy.rs crates/core/src/hybrid.rs crates/core/src/memory.rs crates/core/src/runs.rs crates/core/src/schedule.rs crates/core/src/timing.rs crates/core/src/validate.rs

/root/repo/target/debug/deps/libbfpp_core-d6a6d64eecc7ee6d.rmeta: crates/core/src/lib.rs crates/core/src/action.rs crates/core/src/bubble.rs crates/core/src/cache.rs crates/core/src/generators.rs crates/core/src/greedy.rs crates/core/src/hybrid.rs crates/core/src/memory.rs crates/core/src/runs.rs crates/core/src/schedule.rs crates/core/src/timing.rs crates/core/src/validate.rs

crates/core/src/lib.rs:
crates/core/src/action.rs:
crates/core/src/bubble.rs:
crates/core/src/cache.rs:
crates/core/src/generators.rs:
crates/core/src/greedy.rs:
crates/core/src/hybrid.rs:
crates/core/src/memory.rs:
crates/core/src/runs.rs:
crates/core/src/schedule.rs:
crates/core/src/timing.rs:
crates/core/src/validate.rs:
