/root/repo/target/debug/deps/solver_properties-2327194cf53019b2.d: crates/sim/tests/solver_properties.rs Cargo.toml

/root/repo/target/debug/deps/libsolver_properties-2327194cf53019b2.rmeta: crates/sim/tests/solver_properties.rs Cargo.toml

crates/sim/tests/solver_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
