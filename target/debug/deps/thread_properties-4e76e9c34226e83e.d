/root/repo/target/debug/deps/thread_properties-4e76e9c34226e83e.d: crates/collectives/tests/thread_properties.rs

/root/repo/target/debug/deps/thread_properties-4e76e9c34226e83e: crates/collectives/tests/thread_properties.rs

crates/collectives/tests/thread_properties.rs:
