/root/repo/target/debug/deps/bfpp_exec-72b8911ce8e3a66d.d: crates/exec/src/lib.rs crates/exec/src/breakdown.rs crates/exec/src/kernel.rs crates/exec/src/lower.rs crates/exec/src/measure.rs crates/exec/src/memory.rs crates/exec/src/overlap.rs crates/exec/src/search.rs

/root/repo/target/debug/deps/bfpp_exec-72b8911ce8e3a66d: crates/exec/src/lib.rs crates/exec/src/breakdown.rs crates/exec/src/kernel.rs crates/exec/src/lower.rs crates/exec/src/measure.rs crates/exec/src/memory.rs crates/exec/src/overlap.rs crates/exec/src/search.rs

crates/exec/src/lib.rs:
crates/exec/src/breakdown.rs:
crates/exec/src/kernel.rs:
crates/exec/src/lower.rs:
crates/exec/src/measure.rs:
crates/exec/src/memory.rs:
crates/exec/src/overlap.rs:
crates/exec/src/search.rs:
