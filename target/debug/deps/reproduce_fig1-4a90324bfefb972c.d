/root/repo/target/debug/deps/reproduce_fig1-4a90324bfefb972c.d: crates/bench/src/bin/reproduce_fig1.rs Cargo.toml

/root/repo/target/debug/deps/libreproduce_fig1-4a90324bfefb972c.rmeta: crates/bench/src/bin/reproduce_fig1.rs Cargo.toml

crates/bench/src/bin/reproduce_fig1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
