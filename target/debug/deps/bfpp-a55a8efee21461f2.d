/root/repo/target/debug/deps/bfpp-a55a8efee21461f2.d: src/bin/bfpp.rs Cargo.toml

/root/repo/target/debug/deps/libbfpp-a55a8efee21461f2.rmeta: src/bin/bfpp.rs Cargo.toml

src/bin/bfpp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
