/root/repo/target/debug/deps/exec_properties-ae5f016b3b4c1ffb.d: crates/exec/tests/exec_properties.rs

/root/repo/target/debug/deps/exec_properties-ae5f016b3b4c1ffb: crates/exec/tests/exec_properties.rs

crates/exec/tests/exec_properties.rs:
