/root/repo/target/debug/deps/reproduce_fig4-b1779da534dc3369.d: crates/bench/src/bin/reproduce_fig4.rs

/root/repo/target/debug/deps/reproduce_fig4-b1779da534dc3369: crates/bench/src/bin/reproduce_fig4.rs

crates/bench/src/bin/reproduce_fig4.rs:
