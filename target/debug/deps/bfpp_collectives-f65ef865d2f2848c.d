/root/repo/target/debug/deps/bfpp_collectives-f65ef865d2f2848c.d: crates/collectives/src/lib.rs crates/collectives/src/cost.rs crates/collectives/src/thread.rs Cargo.toml

/root/repo/target/debug/deps/libbfpp_collectives-f65ef865d2f2848c.rmeta: crates/collectives/src/lib.rs crates/collectives/src/cost.rs crates/collectives/src/thread.rs Cargo.toml

crates/collectives/src/lib.rs:
crates/collectives/src/cost.rs:
crates/collectives/src/thread.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
