/root/repo/target/debug/deps/reproduce_table_e1-cdac847d2a5b5213.d: crates/bench/src/bin/reproduce_table_e1.rs

/root/repo/target/debug/deps/libreproduce_table_e1-cdac847d2a5b5213.rmeta: crates/bench/src/bin/reproduce_table_e1.rs

crates/bench/src/bin/reproduce_table_e1.rs:
