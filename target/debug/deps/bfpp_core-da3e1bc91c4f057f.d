/root/repo/target/debug/deps/bfpp_core-da3e1bc91c4f057f.d: crates/core/src/lib.rs crates/core/src/action.rs crates/core/src/bubble.rs crates/core/src/cache.rs crates/core/src/generators.rs crates/core/src/greedy.rs crates/core/src/hybrid.rs crates/core/src/memory.rs crates/core/src/runs.rs crates/core/src/schedule.rs crates/core/src/timing.rs crates/core/src/validate.rs Cargo.toml

/root/repo/target/debug/deps/libbfpp_core-da3e1bc91c4f057f.rmeta: crates/core/src/lib.rs crates/core/src/action.rs crates/core/src/bubble.rs crates/core/src/cache.rs crates/core/src/generators.rs crates/core/src/greedy.rs crates/core/src/hybrid.rs crates/core/src/memory.rs crates/core/src/runs.rs crates/core/src/schedule.rs crates/core/src/timing.rs crates/core/src/validate.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/action.rs:
crates/core/src/bubble.rs:
crates/core/src/cache.rs:
crates/core/src/generators.rs:
crates/core/src/greedy.rs:
crates/core/src/hybrid.rs:
crates/core/src/memory.rs:
crates/core/src/runs.rs:
crates/core/src/schedule.rs:
crates/core/src/timing.rs:
crates/core/src/validate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
