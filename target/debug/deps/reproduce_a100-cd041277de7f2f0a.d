/root/repo/target/debug/deps/reproduce_a100-cd041277de7f2f0a.d: crates/bench/src/bin/reproduce_a100.rs

/root/repo/target/debug/deps/reproduce_a100-cd041277de7f2f0a: crates/bench/src/bin/reproduce_a100.rs

crates/bench/src/bin/reproduce_a100.rs:
