/root/repo/target/debug/deps/reproduce_table_e3-f77888e5357203e0.d: crates/bench/src/bin/reproduce_table_e3.rs

/root/repo/target/debug/deps/libreproduce_table_e3-f77888e5357203e0.rmeta: crates/bench/src/bin/reproduce_table_e3.rs

crates/bench/src/bin/reproduce_table_e3.rs:
