/root/repo/target/debug/deps/fault_injection-b04d0b1295879f79.d: crates/collectives/tests/fault_injection.rs Cargo.toml

/root/repo/target/debug/deps/libfault_injection-b04d0b1295879f79.rmeta: crates/collectives/tests/fault_injection.rs Cargo.toml

crates/collectives/tests/fault_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
