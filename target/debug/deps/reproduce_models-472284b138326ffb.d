/root/repo/target/debug/deps/reproduce_models-472284b138326ffb.d: crates/bench/src/bin/reproduce_models.rs

/root/repo/target/debug/deps/reproduce_models-472284b138326ffb: crates/bench/src/bin/reproduce_models.rs

crates/bench/src/bin/reproduce_models.rs:
