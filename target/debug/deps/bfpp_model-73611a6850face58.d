/root/repo/target/debug/deps/bfpp_model-73611a6850face58.d: crates/model/src/lib.rs crates/model/src/memory.rs crates/model/src/presets.rs crates/model/src/transformer.rs

/root/repo/target/debug/deps/bfpp_model-73611a6850face58: crates/model/src/lib.rs crates/model/src/memory.rs crates/model/src/presets.rs crates/model/src/transformer.rs

crates/model/src/lib.rs:
crates/model/src/memory.rs:
crates/model/src/presets.rs:
crates/model/src/transformer.rs:
