/root/repo/target/debug/deps/schedule_properties-ad7b73a478f3dd4e.d: crates/core/tests/schedule_properties.rs

/root/repo/target/debug/deps/schedule_properties-ad7b73a478f3dd4e: crates/core/tests/schedule_properties.rs

crates/core/tests/schedule_properties.rs:
