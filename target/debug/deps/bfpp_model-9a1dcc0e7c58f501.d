/root/repo/target/debug/deps/bfpp_model-9a1dcc0e7c58f501.d: crates/model/src/lib.rs crates/model/src/memory.rs crates/model/src/presets.rs crates/model/src/transformer.rs Cargo.toml

/root/repo/target/debug/deps/libbfpp_model-9a1dcc0e7c58f501.rmeta: crates/model/src/lib.rs crates/model/src/memory.rs crates/model/src/presets.rs crates/model/src/transformer.rs Cargo.toml

crates/model/src/lib.rs:
crates/model/src/memory.rs:
crates/model/src/presets.rs:
crates/model/src/transformer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
