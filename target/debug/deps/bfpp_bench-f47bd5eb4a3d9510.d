/root/repo/target/debug/deps/bfpp_bench-f47bd5eb4a3d9510.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/report.rs crates/bench/src/robustness.rs crates/bench/src/tables.rs Cargo.toml

/root/repo/target/debug/deps/libbfpp_bench-f47bd5eb4a3d9510.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/report.rs crates/bench/src/robustness.rs crates/bench/src/tables.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/report.rs:
crates/bench/src/robustness.rs:
crates/bench/src/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
