/root/repo/target/debug/deps/reproduce_fig3-c0fa2d2b4a0f9cb4.d: crates/bench/src/bin/reproduce_fig3.rs

/root/repo/target/debug/deps/reproduce_fig3-c0fa2d2b4a0f9cb4: crates/bench/src/bin/reproduce_fig3.rs

crates/bench/src/bin/reproduce_fig3.rs:
