/root/repo/target/debug/deps/reproduce_fig7-1d41cf2bbe00ce88.d: crates/bench/src/bin/reproduce_fig7.rs

/root/repo/target/debug/deps/libreproduce_fig7-1d41cf2bbe00ce88.rmeta: crates/bench/src/bin/reproduce_fig7.rs

crates/bench/src/bin/reproduce_fig7.rs:
