/root/repo/target/debug/deps/reproduce_fig2-3065a916b0995172.d: crates/bench/src/bin/reproduce_fig2.rs

/root/repo/target/debug/deps/reproduce_fig2-3065a916b0995172: crates/bench/src/bin/reproduce_fig2.rs

crates/bench/src/bin/reproduce_fig2.rs:
