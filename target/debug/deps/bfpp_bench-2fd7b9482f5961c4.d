/root/repo/target/debug/deps/bfpp_bench-2fd7b9482f5961c4.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/report.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/bfpp_bench-2fd7b9482f5961c4: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/report.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/report.rs:
crates/bench/src/tables.rs:
