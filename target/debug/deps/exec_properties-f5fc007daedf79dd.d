/root/repo/target/debug/deps/exec_properties-f5fc007daedf79dd.d: crates/exec/tests/exec_properties.rs Cargo.toml

/root/repo/target/debug/deps/libexec_properties-f5fc007daedf79dd.rmeta: crates/exec/tests/exec_properties.rs Cargo.toml

crates/exec/tests/exec_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
