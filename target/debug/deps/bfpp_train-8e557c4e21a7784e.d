/root/repo/target/debug/deps/bfpp_train-8e557c4e21a7784e.d: crates/train/src/lib.rs crates/train/src/attention.rs crates/train/src/builder.rs crates/train/src/half.rs crates/train/src/layers.rs crates/train/src/loss.rs crates/train/src/optim.rs crates/train/src/pipeline.rs crates/train/src/serial.rs crates/train/src/tensor.rs

/root/repo/target/debug/deps/libbfpp_train-8e557c4e21a7784e.rmeta: crates/train/src/lib.rs crates/train/src/attention.rs crates/train/src/builder.rs crates/train/src/half.rs crates/train/src/layers.rs crates/train/src/loss.rs crates/train/src/optim.rs crates/train/src/pipeline.rs crates/train/src/serial.rs crates/train/src/tensor.rs

crates/train/src/lib.rs:
crates/train/src/attention.rs:
crates/train/src/builder.rs:
crates/train/src/half.rs:
crates/train/src/layers.rs:
crates/train/src/loss.rs:
crates/train/src/optim.rs:
crates/train/src/pipeline.rs:
crates/train/src/serial.rs:
crates/train/src/tensor.rs:
