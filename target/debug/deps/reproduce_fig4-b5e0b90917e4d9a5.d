/root/repo/target/debug/deps/reproduce_fig4-b5e0b90917e4d9a5.d: crates/bench/src/bin/reproduce_fig4.rs

/root/repo/target/debug/deps/reproduce_fig4-b5e0b90917e4d9a5: crates/bench/src/bin/reproduce_fig4.rs

crates/bench/src/bin/reproduce_fig4.rs:
