/root/repo/target/debug/deps/bfpp_sim-5232b43476c8c03e.d: crates/sim/src/lib.rs crates/sim/src/critical_path.rs crates/sim/src/graph.rs crates/sim/src/perturb.rs crates/sim/src/solver.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/libbfpp_sim-5232b43476c8c03e.rmeta: crates/sim/src/lib.rs crates/sim/src/critical_path.rs crates/sim/src/graph.rs crates/sim/src/perturb.rs crates/sim/src/solver.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/critical_path.rs:
crates/sim/src/graph.rs:
crates/sim/src/perturb.rs:
crates/sim/src/solver.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
