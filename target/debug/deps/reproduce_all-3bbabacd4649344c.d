/root/repo/target/debug/deps/reproduce_all-3bbabacd4649344c.d: crates/bench/src/bin/reproduce_all.rs

/root/repo/target/debug/deps/libreproduce_all-3bbabacd4649344c.rmeta: crates/bench/src/bin/reproduce_all.rs

crates/bench/src/bin/reproduce_all.rs:
