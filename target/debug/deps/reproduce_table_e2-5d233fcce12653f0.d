/root/repo/target/debug/deps/reproduce_table_e2-5d233fcce12653f0.d: crates/bench/src/bin/reproduce_table_e2.rs

/root/repo/target/debug/deps/libreproduce_table_e2-5d233fcce12653f0.rmeta: crates/bench/src/bin/reproduce_table_e2.rs

crates/bench/src/bin/reproduce_table_e2.rs:
