/root/repo/target/debug/deps/bfpp_sim-bcd6149b6f3318a6.d: crates/sim/src/lib.rs crates/sim/src/critical_path.rs crates/sim/src/graph.rs crates/sim/src/perturb.rs crates/sim/src/solver.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/bfpp_sim-bcd6149b6f3318a6: crates/sim/src/lib.rs crates/sim/src/critical_path.rs crates/sim/src/graph.rs crates/sim/src/perturb.rs crates/sim/src/solver.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/critical_path.rs:
crates/sim/src/graph.rs:
crates/sim/src/perturb.rs:
crates/sim/src/solver.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
