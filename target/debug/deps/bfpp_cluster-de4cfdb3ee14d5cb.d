/root/repo/target/debug/deps/bfpp_cluster-de4cfdb3ee14d5cb.d: crates/cluster/src/lib.rs crates/cluster/src/cluster.rs crates/cluster/src/gpu.rs crates/cluster/src/network.rs crates/cluster/src/node.rs crates/cluster/src/presets.rs

/root/repo/target/debug/deps/libbfpp_cluster-de4cfdb3ee14d5cb.rlib: crates/cluster/src/lib.rs crates/cluster/src/cluster.rs crates/cluster/src/gpu.rs crates/cluster/src/network.rs crates/cluster/src/node.rs crates/cluster/src/presets.rs

/root/repo/target/debug/deps/libbfpp_cluster-de4cfdb3ee14d5cb.rmeta: crates/cluster/src/lib.rs crates/cluster/src/cluster.rs crates/cluster/src/gpu.rs crates/cluster/src/network.rs crates/cluster/src/node.rs crates/cluster/src/presets.rs

crates/cluster/src/lib.rs:
crates/cluster/src/cluster.rs:
crates/cluster/src/gpu.rs:
crates/cluster/src/network.rs:
crates/cluster/src/node.rs:
crates/cluster/src/presets.rs:
