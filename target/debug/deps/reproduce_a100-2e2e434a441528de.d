/root/repo/target/debug/deps/reproduce_a100-2e2e434a441528de.d: crates/bench/src/bin/reproduce_a100.rs Cargo.toml

/root/repo/target/debug/deps/libreproduce_a100-2e2e434a441528de.rmeta: crates/bench/src/bin/reproduce_a100.rs Cargo.toml

crates/bench/src/bin/reproduce_a100.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
