/root/repo/target/debug/deps/schedule_equivalence-51e13599cc03c2ee.d: tests/schedule_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libschedule_equivalence-51e13599cc03c2ee.rmeta: tests/schedule_equivalence.rs Cargo.toml

tests/schedule_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
