/root/repo/target/debug/deps/bfpp-9ce2cae4caa63df1.d: src/bin/bfpp.rs

/root/repo/target/debug/deps/libbfpp-9ce2cae4caa63df1.rmeta: src/bin/bfpp.rs

src/bin/bfpp.rs:
