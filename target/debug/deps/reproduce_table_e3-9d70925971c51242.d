/root/repo/target/debug/deps/reproduce_table_e3-9d70925971c51242.d: crates/bench/src/bin/reproduce_table_e3.rs Cargo.toml

/root/repo/target/debug/deps/libreproduce_table_e3-9d70925971c51242.rmeta: crates/bench/src/bin/reproduce_table_e3.rs Cargo.toml

crates/bench/src/bin/reproduce_table_e3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
