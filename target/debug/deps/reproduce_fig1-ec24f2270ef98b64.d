/root/repo/target/debug/deps/reproduce_fig1-ec24f2270ef98b64.d: crates/bench/src/bin/reproduce_fig1.rs

/root/repo/target/debug/deps/reproduce_fig1-ec24f2270ef98b64: crates/bench/src/bin/reproduce_fig1.rs

crates/bench/src/bin/reproduce_fig1.rs:
