/root/repo/target/debug/deps/reproduce_all-afb8e388f6ea76f3.d: crates/bench/src/bin/reproduce_all.rs

/root/repo/target/debug/deps/reproduce_all-afb8e388f6ea76f3: crates/bench/src/bin/reproduce_all.rs

crates/bench/src/bin/reproduce_all.rs:
