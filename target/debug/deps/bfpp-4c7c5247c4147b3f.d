/root/repo/target/debug/deps/bfpp-4c7c5247c4147b3f.d: src/bin/bfpp.rs

/root/repo/target/debug/deps/bfpp-4c7c5247c4147b3f: src/bin/bfpp.rs

src/bin/bfpp.rs:
