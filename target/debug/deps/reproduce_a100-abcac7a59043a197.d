/root/repo/target/debug/deps/reproduce_a100-abcac7a59043a197.d: crates/bench/src/bin/reproduce_a100.rs

/root/repo/target/debug/deps/libreproduce_a100-abcac7a59043a197.rmeta: crates/bench/src/bin/reproduce_a100.rs

crates/bench/src/bin/reproduce_a100.rs:
