/root/repo/target/debug/deps/solver_properties-ef46cb2c0514c854.d: crates/sim/tests/solver_properties.rs

/root/repo/target/debug/deps/solver_properties-ef46cb2c0514c854: crates/sim/tests/solver_properties.rs

crates/sim/tests/solver_properties.rs:
