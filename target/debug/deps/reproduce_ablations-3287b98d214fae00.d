/root/repo/target/debug/deps/reproduce_ablations-3287b98d214fae00.d: crates/bench/src/bin/reproduce_ablations.rs

/root/repo/target/debug/deps/reproduce_ablations-3287b98d214fae00: crates/bench/src/bin/reproduce_ablations.rs

crates/bench/src/bin/reproduce_ablations.rs:
