/root/repo/target/debug/deps/bfpp_cluster-6afb788d3f72d623.d: crates/cluster/src/lib.rs crates/cluster/src/cluster.rs crates/cluster/src/gpu.rs crates/cluster/src/network.rs crates/cluster/src/node.rs crates/cluster/src/presets.rs

/root/repo/target/debug/deps/libbfpp_cluster-6afb788d3f72d623.rmeta: crates/cluster/src/lib.rs crates/cluster/src/cluster.rs crates/cluster/src/gpu.rs crates/cluster/src/network.rs crates/cluster/src/node.rs crates/cluster/src/presets.rs

crates/cluster/src/lib.rs:
crates/cluster/src/cluster.rs:
crates/cluster/src/gpu.rs:
crates/cluster/src/network.rs:
crates/cluster/src/node.rs:
crates/cluster/src/presets.rs:
