/root/repo/target/debug/deps/bfpp_collectives-cc67f966ee17f3c6.d: crates/collectives/src/lib.rs crates/collectives/src/cost.rs crates/collectives/src/thread.rs

/root/repo/target/debug/deps/bfpp_collectives-cc67f966ee17f3c6: crates/collectives/src/lib.rs crates/collectives/src/cost.rs crates/collectives/src/thread.rs

crates/collectives/src/lib.rs:
crates/collectives/src/cost.rs:
crates/collectives/src/thread.rs:
