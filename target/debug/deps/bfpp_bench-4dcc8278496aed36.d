/root/repo/target/debug/deps/bfpp_bench-4dcc8278496aed36.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/report.rs crates/bench/src/robustness.rs crates/bench/src/tables.rs Cargo.toml

/root/repo/target/debug/deps/libbfpp_bench-4dcc8278496aed36.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/report.rs crates/bench/src/robustness.rs crates/bench/src/tables.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/report.rs:
crates/bench/src/robustness.rs:
crates/bench/src/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
