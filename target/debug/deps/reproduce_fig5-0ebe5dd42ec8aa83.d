/root/repo/target/debug/deps/reproduce_fig5-0ebe5dd42ec8aa83.d: crates/bench/src/bin/reproduce_fig5.rs Cargo.toml

/root/repo/target/debug/deps/libreproduce_fig5-0ebe5dd42ec8aa83.rmeta: crates/bench/src/bin/reproduce_fig5.rs Cargo.toml

crates/bench/src/bin/reproduce_fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
