/root/repo/target/debug/deps/reproduce_noise-e6700957a151ee44.d: crates/bench/src/bin/reproduce_noise.rs

/root/repo/target/debug/deps/reproduce_noise-e6700957a151ee44: crates/bench/src/bin/reproduce_noise.rs

crates/bench/src/bin/reproduce_noise.rs:
