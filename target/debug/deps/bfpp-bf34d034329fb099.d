/root/repo/target/debug/deps/bfpp-bf34d034329fb099.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbfpp-bf34d034329fb099.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
