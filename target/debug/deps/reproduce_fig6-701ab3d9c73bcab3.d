/root/repo/target/debug/deps/reproduce_fig6-701ab3d9c73bcab3.d: crates/bench/src/bin/reproduce_fig6.rs

/root/repo/target/debug/deps/reproduce_fig6-701ab3d9c73bcab3: crates/bench/src/bin/reproduce_fig6.rs

crates/bench/src/bin/reproduce_fig6.rs:
