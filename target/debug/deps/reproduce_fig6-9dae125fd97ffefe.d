/root/repo/target/debug/deps/reproduce_fig6-9dae125fd97ffefe.d: crates/bench/src/bin/reproduce_fig6.rs Cargo.toml

/root/repo/target/debug/deps/libreproduce_fig6-9dae125fd97ffefe.rmeta: crates/bench/src/bin/reproduce_fig6.rs Cargo.toml

crates/bench/src/bin/reproduce_fig6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
