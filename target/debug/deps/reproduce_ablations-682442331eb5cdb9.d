/root/repo/target/debug/deps/reproduce_ablations-682442331eb5cdb9.d: crates/bench/src/bin/reproduce_ablations.rs Cargo.toml

/root/repo/target/debug/deps/libreproduce_ablations-682442331eb5cdb9.rmeta: crates/bench/src/bin/reproduce_ablations.rs Cargo.toml

crates/bench/src/bin/reproduce_ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
