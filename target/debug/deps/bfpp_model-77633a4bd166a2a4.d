/root/repo/target/debug/deps/bfpp_model-77633a4bd166a2a4.d: crates/model/src/lib.rs crates/model/src/memory.rs crates/model/src/presets.rs crates/model/src/transformer.rs

/root/repo/target/debug/deps/libbfpp_model-77633a4bd166a2a4.rmeta: crates/model/src/lib.rs crates/model/src/memory.rs crates/model/src/presets.rs crates/model/src/transformer.rs

crates/model/src/lib.rs:
crates/model/src/memory.rs:
crates/model/src/presets.rs:
crates/model/src/transformer.rs:
