/root/repo/target/debug/deps/bfpp-e7a932d8860217d9.d: src/lib.rs

/root/repo/target/debug/deps/bfpp-e7a932d8860217d9: src/lib.rs

src/lib.rs:
