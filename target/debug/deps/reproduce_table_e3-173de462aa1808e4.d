/root/repo/target/debug/deps/reproduce_table_e3-173de462aa1808e4.d: crates/bench/src/bin/reproduce_table_e3.rs

/root/repo/target/debug/deps/reproduce_table_e3-173de462aa1808e4: crates/bench/src/bin/reproduce_table_e3.rs

crates/bench/src/bin/reproduce_table_e3.rs:
