/root/repo/target/debug/deps/bfpp_exec-b50594a6c12f21df.d: crates/exec/src/lib.rs crates/exec/src/breakdown.rs crates/exec/src/kernel.rs crates/exec/src/lower.rs crates/exec/src/measure.rs crates/exec/src/memory.rs crates/exec/src/overlap.rs crates/exec/src/search.rs

/root/repo/target/debug/deps/libbfpp_exec-b50594a6c12f21df.rlib: crates/exec/src/lib.rs crates/exec/src/breakdown.rs crates/exec/src/kernel.rs crates/exec/src/lower.rs crates/exec/src/measure.rs crates/exec/src/memory.rs crates/exec/src/overlap.rs crates/exec/src/search.rs

/root/repo/target/debug/deps/libbfpp_exec-b50594a6c12f21df.rmeta: crates/exec/src/lib.rs crates/exec/src/breakdown.rs crates/exec/src/kernel.rs crates/exec/src/lower.rs crates/exec/src/measure.rs crates/exec/src/memory.rs crates/exec/src/overlap.rs crates/exec/src/search.rs

crates/exec/src/lib.rs:
crates/exec/src/breakdown.rs:
crates/exec/src/kernel.rs:
crates/exec/src/lower.rs:
crates/exec/src/measure.rs:
crates/exec/src/memory.rs:
crates/exec/src/overlap.rs:
crates/exec/src/search.rs:
