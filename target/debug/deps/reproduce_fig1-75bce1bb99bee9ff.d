/root/repo/target/debug/deps/reproduce_fig1-75bce1bb99bee9ff.d: crates/bench/src/bin/reproduce_fig1.rs

/root/repo/target/debug/deps/reproduce_fig1-75bce1bb99bee9ff: crates/bench/src/bin/reproduce_fig1.rs

crates/bench/src/bin/reproduce_fig1.rs:
