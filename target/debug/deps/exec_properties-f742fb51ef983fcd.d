/root/repo/target/debug/deps/exec_properties-f742fb51ef983fcd.d: crates/exec/tests/exec_properties.rs

/root/repo/target/debug/deps/exec_properties-f742fb51ef983fcd: crates/exec/tests/exec_properties.rs

crates/exec/tests/exec_properties.rs:
