/root/repo/target/debug/deps/bfpp_train-e84b09652f4b2672.d: crates/train/src/lib.rs crates/train/src/attention.rs crates/train/src/builder.rs crates/train/src/half.rs crates/train/src/layers.rs crates/train/src/loss.rs crates/train/src/optim.rs crates/train/src/pipeline.rs crates/train/src/serial.rs crates/train/src/tensor.rs Cargo.toml

/root/repo/target/debug/deps/libbfpp_train-e84b09652f4b2672.rmeta: crates/train/src/lib.rs crates/train/src/attention.rs crates/train/src/builder.rs crates/train/src/half.rs crates/train/src/layers.rs crates/train/src/loss.rs crates/train/src/optim.rs crates/train/src/pipeline.rs crates/train/src/serial.rs crates/train/src/tensor.rs Cargo.toml

crates/train/src/lib.rs:
crates/train/src/attention.rs:
crates/train/src/builder.rs:
crates/train/src/half.rs:
crates/train/src/layers.rs:
crates/train/src/loss.rs:
crates/train/src/optim.rs:
crates/train/src/pipeline.rs:
crates/train/src/serial.rs:
crates/train/src/tensor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
