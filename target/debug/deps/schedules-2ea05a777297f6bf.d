/root/repo/target/debug/deps/schedules-2ea05a777297f6bf.d: crates/bench/benches/schedules.rs Cargo.toml

/root/repo/target/debug/deps/libschedules-2ea05a777297f6bf.rmeta: crates/bench/benches/schedules.rs Cargo.toml

crates/bench/benches/schedules.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
