/root/repo/target/debug/deps/reproduce_stragglers-f59979b68fbcc171.d: crates/bench/src/bin/reproduce_stragglers.rs Cargo.toml

/root/repo/target/debug/deps/libreproduce_stragglers-f59979b68fbcc171.rmeta: crates/bench/src/bin/reproduce_stragglers.rs Cargo.toml

crates/bench/src/bin/reproduce_stragglers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
