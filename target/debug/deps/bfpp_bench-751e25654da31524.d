/root/repo/target/debug/deps/bfpp_bench-751e25654da31524.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/report.rs crates/bench/src/robustness.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/bfpp_bench-751e25654da31524: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/report.rs crates/bench/src/robustness.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/report.rs:
crates/bench/src/robustness.rs:
crates/bench/src/tables.rs:
