/root/repo/target/debug/deps/bfpp-525fe94a28953fac.d: src/lib.rs

/root/repo/target/debug/deps/bfpp-525fe94a28953fac: src/lib.rs

src/lib.rs:
