/root/repo/target/debug/deps/reproduce_all-e848bd3caff3fad8.d: crates/bench/src/bin/reproduce_all.rs

/root/repo/target/debug/deps/reproduce_all-e848bd3caff3fad8: crates/bench/src/bin/reproduce_all.rs

crates/bench/src/bin/reproduce_all.rs:
