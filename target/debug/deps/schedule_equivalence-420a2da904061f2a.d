/root/repo/target/debug/deps/schedule_equivalence-420a2da904061f2a.d: tests/schedule_equivalence.rs

/root/repo/target/debug/deps/schedule_equivalence-420a2da904061f2a: tests/schedule_equivalence.rs

tests/schedule_equivalence.rs:
