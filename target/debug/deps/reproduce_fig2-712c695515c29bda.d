/root/repo/target/debug/deps/reproduce_fig2-712c695515c29bda.d: crates/bench/src/bin/reproduce_fig2.rs

/root/repo/target/debug/deps/libreproduce_fig2-712c695515c29bda.rmeta: crates/bench/src/bin/reproduce_fig2.rs

crates/bench/src/bin/reproduce_fig2.rs:
