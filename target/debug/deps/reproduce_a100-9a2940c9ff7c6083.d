/root/repo/target/debug/deps/reproduce_a100-9a2940c9ff7c6083.d: crates/bench/src/bin/reproduce_a100.rs

/root/repo/target/debug/deps/reproduce_a100-9a2940c9ff7c6083: crates/bench/src/bin/reproduce_a100.rs

crates/bench/src/bin/reproduce_a100.rs:
