/root/repo/target/debug/deps/bfpp_bench-c8b8309fb1ae43b1.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/report.rs crates/bench/src/robustness.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/libbfpp_bench-c8b8309fb1ae43b1.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/report.rs crates/bench/src/robustness.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/libbfpp_bench-c8b8309fb1ae43b1.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/report.rs crates/bench/src/robustness.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/report.rs:
crates/bench/src/robustness.rs:
crates/bench/src/tables.rs:
