/root/repo/target/debug/deps/bfpp-f8ac9ddb1651474e.d: src/lib.rs

/root/repo/target/debug/deps/libbfpp-f8ac9ddb1651474e.rmeta: src/lib.rs

src/lib.rs:
