/root/repo/target/debug/deps/bfpp_analytic-6ab33ea3fe17844b.d: crates/analytic/src/lib.rs crates/analytic/src/efficiency.rs crates/analytic/src/intensity.rs crates/analytic/src/noise.rs crates/analytic/src/tradeoff.rs

/root/repo/target/debug/deps/bfpp_analytic-6ab33ea3fe17844b: crates/analytic/src/lib.rs crates/analytic/src/efficiency.rs crates/analytic/src/intensity.rs crates/analytic/src/noise.rs crates/analytic/src/tradeoff.rs

crates/analytic/src/lib.rs:
crates/analytic/src/efficiency.rs:
crates/analytic/src/intensity.rs:
crates/analytic/src/noise.rs:
crates/analytic/src/tradeoff.rs:
