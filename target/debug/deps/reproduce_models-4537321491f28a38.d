/root/repo/target/debug/deps/reproduce_models-4537321491f28a38.d: crates/bench/src/bin/reproduce_models.rs Cargo.toml

/root/repo/target/debug/deps/libreproduce_models-4537321491f28a38.rmeta: crates/bench/src/bin/reproduce_models.rs Cargo.toml

crates/bench/src/bin/reproduce_models.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
