/root/repo/target/debug/deps/reproduce_fig5-6114f043d915929b.d: crates/bench/src/bin/reproduce_fig5.rs Cargo.toml

/root/repo/target/debug/deps/libreproduce_fig5-6114f043d915929b.rmeta: crates/bench/src/bin/reproduce_fig5.rs Cargo.toml

crates/bench/src/bin/reproduce_fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
