/root/repo/target/debug/deps/bfpp_model-b4308e1f09311f53.d: crates/model/src/lib.rs crates/model/src/memory.rs crates/model/src/presets.rs crates/model/src/transformer.rs

/root/repo/target/debug/deps/libbfpp_model-b4308e1f09311f53.rlib: crates/model/src/lib.rs crates/model/src/memory.rs crates/model/src/presets.rs crates/model/src/transformer.rs

/root/repo/target/debug/deps/libbfpp_model-b4308e1f09311f53.rmeta: crates/model/src/lib.rs crates/model/src/memory.rs crates/model/src/presets.rs crates/model/src/transformer.rs

crates/model/src/lib.rs:
crates/model/src/memory.rs:
crates/model/src/presets.rs:
crates/model/src/transformer.rs:
