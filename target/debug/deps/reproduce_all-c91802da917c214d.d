/root/repo/target/debug/deps/reproduce_all-c91802da917c214d.d: crates/bench/src/bin/reproduce_all.rs

/root/repo/target/debug/deps/reproduce_all-c91802da917c214d: crates/bench/src/bin/reproduce_all.rs

crates/bench/src/bin/reproduce_all.rs:
