/root/repo/target/debug/deps/bfpp_exec-48f0920d5b2800ba.d: crates/exec/src/lib.rs crates/exec/src/breakdown.rs crates/exec/src/candidates.rs crates/exec/src/kernel.rs crates/exec/src/lower.rs crates/exec/src/measure.rs crates/exec/src/memory.rs crates/exec/src/overlap.rs crates/exec/src/prune.rs crates/exec/src/search.rs

/root/repo/target/debug/deps/bfpp_exec-48f0920d5b2800ba: crates/exec/src/lib.rs crates/exec/src/breakdown.rs crates/exec/src/candidates.rs crates/exec/src/kernel.rs crates/exec/src/lower.rs crates/exec/src/measure.rs crates/exec/src/memory.rs crates/exec/src/overlap.rs crates/exec/src/prune.rs crates/exec/src/search.rs

crates/exec/src/lib.rs:
crates/exec/src/breakdown.rs:
crates/exec/src/candidates.rs:
crates/exec/src/kernel.rs:
crates/exec/src/lower.rs:
crates/exec/src/measure.rs:
crates/exec/src/memory.rs:
crates/exec/src/overlap.rs:
crates/exec/src/prune.rs:
crates/exec/src/search.rs:
