/root/repo/target/debug/deps/reproduce_fig2-1f5b72bc1dc632a6.d: crates/bench/src/bin/reproduce_fig2.rs

/root/repo/target/debug/deps/reproduce_fig2-1f5b72bc1dc632a6: crates/bench/src/bin/reproduce_fig2.rs

crates/bench/src/bin/reproduce_fig2.rs:
