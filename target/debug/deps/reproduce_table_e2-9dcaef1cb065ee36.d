/root/repo/target/debug/deps/reproduce_table_e2-9dcaef1cb065ee36.d: crates/bench/src/bin/reproduce_table_e2.rs

/root/repo/target/debug/deps/reproduce_table_e2-9dcaef1cb065ee36: crates/bench/src/bin/reproduce_table_e2.rs

crates/bench/src/bin/reproduce_table_e2.rs:
