/root/repo/target/debug/deps/bfpp-45e3d342ea6e615e.d: src/bin/bfpp.rs

/root/repo/target/debug/deps/bfpp-45e3d342ea6e615e: src/bin/bfpp.rs

src/bin/bfpp.rs:
