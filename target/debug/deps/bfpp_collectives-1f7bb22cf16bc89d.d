/root/repo/target/debug/deps/bfpp_collectives-1f7bb22cf16bc89d.d: crates/collectives/src/lib.rs crates/collectives/src/cost.rs crates/collectives/src/thread.rs

/root/repo/target/debug/deps/libbfpp_collectives-1f7bb22cf16bc89d.rmeta: crates/collectives/src/lib.rs crates/collectives/src/cost.rs crates/collectives/src/thread.rs

crates/collectives/src/lib.rs:
crates/collectives/src/cost.rs:
crates/collectives/src/thread.rs:
