/root/repo/target/debug/deps/reproduce_fig6-0898b44b2d98b7a5.d: crates/bench/src/bin/reproduce_fig6.rs

/root/repo/target/debug/deps/libreproduce_fig6-0898b44b2d98b7a5.rmeta: crates/bench/src/bin/reproduce_fig6.rs

crates/bench/src/bin/reproduce_fig6.rs:
