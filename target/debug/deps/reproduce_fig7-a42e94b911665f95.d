/root/repo/target/debug/deps/reproduce_fig7-a42e94b911665f95.d: crates/bench/src/bin/reproduce_fig7.rs

/root/repo/target/debug/deps/reproduce_fig7-a42e94b911665f95: crates/bench/src/bin/reproduce_fig7.rs

crates/bench/src/bin/reproduce_fig7.rs:
