/root/repo/target/debug/deps/reproduce_models-bb519c7a771deac1.d: crates/bench/src/bin/reproduce_models.rs

/root/repo/target/debug/deps/libreproduce_models-bb519c7a771deac1.rmeta: crates/bench/src/bin/reproduce_models.rs

crates/bench/src/bin/reproduce_models.rs:
