/root/repo/target/debug/deps/train-623cf1a5dead40d8.d: crates/bench/benches/train.rs Cargo.toml

/root/repo/target/debug/deps/libtrain-623cf1a5dead40d8.rmeta: crates/bench/benches/train.rs Cargo.toml

crates/bench/benches/train.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
