/root/repo/target/debug/deps/reproduce_fig3-8b3629bcb62ac1f4.d: crates/bench/src/bin/reproduce_fig3.rs

/root/repo/target/debug/deps/reproduce_fig3-8b3629bcb62ac1f4: crates/bench/src/bin/reproduce_fig3.rs

crates/bench/src/bin/reproduce_fig3.rs:
