/root/repo/target/debug/deps/reproduce_table_e2-a93147200f1ed411.d: crates/bench/src/bin/reproduce_table_e2.rs

/root/repo/target/debug/deps/reproduce_table_e2-a93147200f1ed411: crates/bench/src/bin/reproduce_table_e2.rs

crates/bench/src/bin/reproduce_table_e2.rs:
