/root/repo/target/debug/deps/reproduce_ablations-e82a4010d9efca0e.d: crates/bench/src/bin/reproduce_ablations.rs

/root/repo/target/debug/deps/libreproduce_ablations-e82a4010d9efca0e.rmeta: crates/bench/src/bin/reproduce_ablations.rs

crates/bench/src/bin/reproduce_ablations.rs:
