/root/repo/target/debug/deps/reproduce_all-c5f8d586c12e86a3.d: crates/bench/src/bin/reproduce_all.rs Cargo.toml

/root/repo/target/debug/deps/libreproduce_all-c5f8d586c12e86a3.rmeta: crates/bench/src/bin/reproduce_all.rs Cargo.toml

crates/bench/src/bin/reproduce_all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
