/root/repo/target/debug/deps/bfpp_cluster-15cd02354cf0d981.d: crates/cluster/src/lib.rs crates/cluster/src/cluster.rs crates/cluster/src/gpu.rs crates/cluster/src/network.rs crates/cluster/src/node.rs crates/cluster/src/presets.rs Cargo.toml

/root/repo/target/debug/deps/libbfpp_cluster-15cd02354cf0d981.rmeta: crates/cluster/src/lib.rs crates/cluster/src/cluster.rs crates/cluster/src/gpu.rs crates/cluster/src/network.rs crates/cluster/src/node.rs crates/cluster/src/presets.rs Cargo.toml

crates/cluster/src/lib.rs:
crates/cluster/src/cluster.rs:
crates/cluster/src/gpu.rs:
crates/cluster/src/network.rs:
crates/cluster/src/node.rs:
crates/cluster/src/presets.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
