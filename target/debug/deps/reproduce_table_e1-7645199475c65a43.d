/root/repo/target/debug/deps/reproduce_table_e1-7645199475c65a43.d: crates/bench/src/bin/reproduce_table_e1.rs

/root/repo/target/debug/deps/reproduce_table_e1-7645199475c65a43: crates/bench/src/bin/reproduce_table_e1.rs

crates/bench/src/bin/reproduce_table_e1.rs:
