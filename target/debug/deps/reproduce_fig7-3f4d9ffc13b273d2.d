/root/repo/target/debug/deps/reproduce_fig7-3f4d9ffc13b273d2.d: crates/bench/src/bin/reproduce_fig7.rs

/root/repo/target/debug/deps/reproduce_fig7-3f4d9ffc13b273d2: crates/bench/src/bin/reproduce_fig7.rs

crates/bench/src/bin/reproduce_fig7.rs:
