/root/repo/target/debug/deps/reproduce_stragglers-823011dfc2a7e252.d: crates/bench/src/bin/reproduce_stragglers.rs

/root/repo/target/debug/deps/reproduce_stragglers-823011dfc2a7e252: crates/bench/src/bin/reproduce_stragglers.rs

crates/bench/src/bin/reproduce_stragglers.rs:
