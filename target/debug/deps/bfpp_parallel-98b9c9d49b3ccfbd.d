/root/repo/target/debug/deps/bfpp_parallel-98b9c9d49b3ccfbd.d: crates/parallel/src/lib.rs crates/parallel/src/batch.rs crates/parallel/src/dp.rs crates/parallel/src/grid.rs crates/parallel/src/placement.rs crates/parallel/src/util.rs

/root/repo/target/debug/deps/libbfpp_parallel-98b9c9d49b3ccfbd.rlib: crates/parallel/src/lib.rs crates/parallel/src/batch.rs crates/parallel/src/dp.rs crates/parallel/src/grid.rs crates/parallel/src/placement.rs crates/parallel/src/util.rs

/root/repo/target/debug/deps/libbfpp_parallel-98b9c9d49b3ccfbd.rmeta: crates/parallel/src/lib.rs crates/parallel/src/batch.rs crates/parallel/src/dp.rs crates/parallel/src/grid.rs crates/parallel/src/placement.rs crates/parallel/src/util.rs

crates/parallel/src/lib.rs:
crates/parallel/src/batch.rs:
crates/parallel/src/dp.rs:
crates/parallel/src/grid.rs:
crates/parallel/src/placement.rs:
crates/parallel/src/util.rs:
