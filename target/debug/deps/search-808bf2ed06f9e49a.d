/root/repo/target/debug/deps/search-808bf2ed06f9e49a.d: crates/bench/benches/search.rs Cargo.toml

/root/repo/target/debug/deps/libsearch-808bf2ed06f9e49a.rmeta: crates/bench/benches/search.rs Cargo.toml

crates/bench/benches/search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
