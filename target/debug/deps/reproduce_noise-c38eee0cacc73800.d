/root/repo/target/debug/deps/reproduce_noise-c38eee0cacc73800.d: crates/bench/src/bin/reproduce_noise.rs

/root/repo/target/debug/deps/libreproduce_noise-c38eee0cacc73800.rmeta: crates/bench/src/bin/reproduce_noise.rs

crates/bench/src/bin/reproduce_noise.rs:
