/root/repo/target/debug/deps/bfpp_analytic-0e277866f9a6d0df.d: crates/analytic/src/lib.rs crates/analytic/src/efficiency.rs crates/analytic/src/intensity.rs crates/analytic/src/noise.rs crates/analytic/src/tradeoff.rs

/root/repo/target/debug/deps/libbfpp_analytic-0e277866f9a6d0df.rlib: crates/analytic/src/lib.rs crates/analytic/src/efficiency.rs crates/analytic/src/intensity.rs crates/analytic/src/noise.rs crates/analytic/src/tradeoff.rs

/root/repo/target/debug/deps/libbfpp_analytic-0e277866f9a6d0df.rmeta: crates/analytic/src/lib.rs crates/analytic/src/efficiency.rs crates/analytic/src/intensity.rs crates/analytic/src/noise.rs crates/analytic/src/tradeoff.rs

crates/analytic/src/lib.rs:
crates/analytic/src/efficiency.rs:
crates/analytic/src/intensity.rs:
crates/analytic/src/noise.rs:
crates/analytic/src/tradeoff.rs:
