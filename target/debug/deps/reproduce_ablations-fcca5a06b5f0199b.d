/root/repo/target/debug/deps/reproduce_ablations-fcca5a06b5f0199b.d: crates/bench/src/bin/reproduce_ablations.rs

/root/repo/target/debug/deps/reproduce_ablations-fcca5a06b5f0199b: crates/bench/src/bin/reproduce_ablations.rs

crates/bench/src/bin/reproduce_ablations.rs:
