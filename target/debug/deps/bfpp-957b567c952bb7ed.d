/root/repo/target/debug/deps/bfpp-957b567c952bb7ed.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbfpp-957b567c952bb7ed.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
