/root/repo/target/debug/deps/reproduce_fig6-6572998badce6fc7.d: crates/bench/src/bin/reproduce_fig6.rs

/root/repo/target/debug/deps/reproduce_fig6-6572998badce6fc7: crates/bench/src/bin/reproduce_fig6.rs

crates/bench/src/bin/reproduce_fig6.rs:
