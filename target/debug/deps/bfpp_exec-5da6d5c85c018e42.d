/root/repo/target/debug/deps/bfpp_exec-5da6d5c85c018e42.d: crates/exec/src/lib.rs crates/exec/src/breakdown.rs crates/exec/src/candidates.rs crates/exec/src/kernel.rs crates/exec/src/lower.rs crates/exec/src/measure.rs crates/exec/src/memory.rs crates/exec/src/overlap.rs crates/exec/src/prune.rs crates/exec/src/search.rs Cargo.toml

/root/repo/target/debug/deps/libbfpp_exec-5da6d5c85c018e42.rmeta: crates/exec/src/lib.rs crates/exec/src/breakdown.rs crates/exec/src/candidates.rs crates/exec/src/kernel.rs crates/exec/src/lower.rs crates/exec/src/measure.rs crates/exec/src/memory.rs crates/exec/src/overlap.rs crates/exec/src/prune.rs crates/exec/src/search.rs Cargo.toml

crates/exec/src/lib.rs:
crates/exec/src/breakdown.rs:
crates/exec/src/candidates.rs:
crates/exec/src/kernel.rs:
crates/exec/src/lower.rs:
crates/exec/src/measure.rs:
crates/exec/src/memory.rs:
crates/exec/src/overlap.rs:
crates/exec/src/prune.rs:
crates/exec/src/search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
