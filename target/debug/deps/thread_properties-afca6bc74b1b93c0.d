/root/repo/target/debug/deps/thread_properties-afca6bc74b1b93c0.d: crates/collectives/tests/thread_properties.rs Cargo.toml

/root/repo/target/debug/deps/libthread_properties-afca6bc74b1b93c0.rmeta: crates/collectives/tests/thread_properties.rs Cargo.toml

crates/collectives/tests/thread_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
