/root/repo/target/debug/deps/paper_pins-16d577e5a8fe0784.d: tests/paper_pins.rs

/root/repo/target/debug/deps/paper_pins-16d577e5a8fe0784: tests/paper_pins.rs

tests/paper_pins.rs:
