/root/repo/target/debug/deps/reproduce_fig6-624f2988759a61bf.d: crates/bench/src/bin/reproduce_fig6.rs

/root/repo/target/debug/deps/reproduce_fig6-624f2988759a61bf: crates/bench/src/bin/reproduce_fig6.rs

crates/bench/src/bin/reproduce_fig6.rs:
