/root/repo/target/debug/deps/bfpp_cluster-0e28e724a2d8d872.d: crates/cluster/src/lib.rs crates/cluster/src/cluster.rs crates/cluster/src/gpu.rs crates/cluster/src/network.rs crates/cluster/src/node.rs crates/cluster/src/presets.rs

/root/repo/target/debug/deps/bfpp_cluster-0e28e724a2d8d872: crates/cluster/src/lib.rs crates/cluster/src/cluster.rs crates/cluster/src/gpu.rs crates/cluster/src/network.rs crates/cluster/src/node.rs crates/cluster/src/presets.rs

crates/cluster/src/lib.rs:
crates/cluster/src/cluster.rs:
crates/cluster/src/gpu.rs:
crates/cluster/src/network.rs:
crates/cluster/src/node.rs:
crates/cluster/src/presets.rs:
