/root/repo/target/debug/deps/reproduce_table_e2-ddc1fdb9c2bbe68e.d: crates/bench/src/bin/reproduce_table_e2.rs Cargo.toml

/root/repo/target/debug/deps/libreproduce_table_e2-ddc1fdb9c2bbe68e.rmeta: crates/bench/src/bin/reproduce_table_e2.rs Cargo.toml

crates/bench/src/bin/reproduce_table_e2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
