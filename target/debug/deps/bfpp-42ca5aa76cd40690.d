/root/repo/target/debug/deps/bfpp-42ca5aa76cd40690.d: src/bin/bfpp.rs

/root/repo/target/debug/deps/bfpp-42ca5aa76cd40690: src/bin/bfpp.rs

src/bin/bfpp.rs:
