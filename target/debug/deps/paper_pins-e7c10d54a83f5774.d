/root/repo/target/debug/deps/paper_pins-e7c10d54a83f5774.d: tests/paper_pins.rs

/root/repo/target/debug/deps/paper_pins-e7c10d54a83f5774: tests/paper_pins.rs

tests/paper_pins.rs:
