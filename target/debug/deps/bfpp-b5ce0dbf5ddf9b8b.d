/root/repo/target/debug/deps/bfpp-b5ce0dbf5ddf9b8b.d: src/bin/bfpp.rs Cargo.toml

/root/repo/target/debug/deps/libbfpp-b5ce0dbf5ddf9b8b.rmeta: src/bin/bfpp.rs Cargo.toml

src/bin/bfpp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
