/root/repo/target/debug/deps/reproduce_table_e3-0b7ba7f92a5073d2.d: crates/bench/src/bin/reproduce_table_e3.rs

/root/repo/target/debug/deps/reproduce_table_e3-0b7ba7f92a5073d2: crates/bench/src/bin/reproduce_table_e3.rs

crates/bench/src/bin/reproduce_table_e3.rs:
