/root/repo/target/debug/deps/reproduce_noise-be0328d4fa6d4a82.d: crates/bench/src/bin/reproduce_noise.rs

/root/repo/target/debug/deps/reproduce_noise-be0328d4fa6d4a82: crates/bench/src/bin/reproduce_noise.rs

crates/bench/src/bin/reproduce_noise.rs:
