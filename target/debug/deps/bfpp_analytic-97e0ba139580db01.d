/root/repo/target/debug/deps/bfpp_analytic-97e0ba139580db01.d: crates/analytic/src/lib.rs crates/analytic/src/efficiency.rs crates/analytic/src/intensity.rs crates/analytic/src/noise.rs crates/analytic/src/tradeoff.rs

/root/repo/target/debug/deps/libbfpp_analytic-97e0ba139580db01.rmeta: crates/analytic/src/lib.rs crates/analytic/src/efficiency.rs crates/analytic/src/intensity.rs crates/analytic/src/noise.rs crates/analytic/src/tradeoff.rs

crates/analytic/src/lib.rs:
crates/analytic/src/efficiency.rs:
crates/analytic/src/intensity.rs:
crates/analytic/src/noise.rs:
crates/analytic/src/tradeoff.rs:
