/root/repo/target/debug/deps/reproduce_ablations-f863da6b4164b174.d: crates/bench/src/bin/reproduce_ablations.rs

/root/repo/target/debug/deps/reproduce_ablations-f863da6b4164b174: crates/bench/src/bin/reproduce_ablations.rs

crates/bench/src/bin/reproduce_ablations.rs:
