/root/repo/target/debug/deps/bfpp_parallel-4a1087c8ecee9b6f.d: crates/parallel/src/lib.rs crates/parallel/src/batch.rs crates/parallel/src/dp.rs crates/parallel/src/grid.rs crates/parallel/src/placement.rs crates/parallel/src/util.rs Cargo.toml

/root/repo/target/debug/deps/libbfpp_parallel-4a1087c8ecee9b6f.rmeta: crates/parallel/src/lib.rs crates/parallel/src/batch.rs crates/parallel/src/dp.rs crates/parallel/src/grid.rs crates/parallel/src/placement.rs crates/parallel/src/util.rs Cargo.toml

crates/parallel/src/lib.rs:
crates/parallel/src/batch.rs:
crates/parallel/src/dp.rs:
crates/parallel/src/grid.rs:
crates/parallel/src/placement.rs:
crates/parallel/src/util.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
