/root/repo/target/debug/deps/reproduce_table_e1-f222d108d7ef2c9c.d: crates/bench/src/bin/reproduce_table_e1.rs

/root/repo/target/debug/deps/reproduce_table_e1-f222d108d7ef2c9c: crates/bench/src/bin/reproduce_table_e1.rs

crates/bench/src/bin/reproduce_table_e1.rs:
