/root/repo/target/debug/deps/bfpp_analytic-672052296d9be845.d: crates/analytic/src/lib.rs crates/analytic/src/efficiency.rs crates/analytic/src/intensity.rs crates/analytic/src/noise.rs crates/analytic/src/tradeoff.rs Cargo.toml

/root/repo/target/debug/deps/libbfpp_analytic-672052296d9be845.rmeta: crates/analytic/src/lib.rs crates/analytic/src/efficiency.rs crates/analytic/src/intensity.rs crates/analytic/src/noise.rs crates/analytic/src/tradeoff.rs Cargo.toml

crates/analytic/src/lib.rs:
crates/analytic/src/efficiency.rs:
crates/analytic/src/intensity.rs:
crates/analytic/src/noise.rs:
crates/analytic/src/tradeoff.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
