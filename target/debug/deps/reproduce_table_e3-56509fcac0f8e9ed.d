/root/repo/target/debug/deps/reproduce_table_e3-56509fcac0f8e9ed.d: crates/bench/src/bin/reproduce_table_e3.rs

/root/repo/target/debug/deps/reproduce_table_e3-56509fcac0f8e9ed: crates/bench/src/bin/reproduce_table_e3.rs

crates/bench/src/bin/reproduce_table_e3.rs:
