/root/repo/target/debug/deps/reproduce_table_e1-6d229397caca15ea.d: crates/bench/src/bin/reproduce_table_e1.rs

/root/repo/target/debug/deps/reproduce_table_e1-6d229397caca15ea: crates/bench/src/bin/reproduce_table_e1.rs

crates/bench/src/bin/reproduce_table_e1.rs:
