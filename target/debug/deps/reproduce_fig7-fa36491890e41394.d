/root/repo/target/debug/deps/reproduce_fig7-fa36491890e41394.d: crates/bench/src/bin/reproduce_fig7.rs Cargo.toml

/root/repo/target/debug/deps/libreproduce_fig7-fa36491890e41394.rmeta: crates/bench/src/bin/reproduce_fig7.rs Cargo.toml

crates/bench/src/bin/reproduce_fig7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
