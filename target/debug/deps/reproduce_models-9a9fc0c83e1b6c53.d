/root/repo/target/debug/deps/reproduce_models-9a9fc0c83e1b6c53.d: crates/bench/src/bin/reproduce_models.rs

/root/repo/target/debug/deps/reproduce_models-9a9fc0c83e1b6c53: crates/bench/src/bin/reproduce_models.rs

crates/bench/src/bin/reproduce_models.rs:
