/root/repo/target/debug/deps/search_equivalence-7a9da84f569ef1c3.d: crates/exec/tests/search_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libsearch_equivalence-7a9da84f569ef1c3.rmeta: crates/exec/tests/search_equivalence.rs Cargo.toml

crates/exec/tests/search_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
