/root/repo/target/debug/deps/bfpp-343897ed0ed312ad.d: src/lib.rs

/root/repo/target/debug/deps/libbfpp-343897ed0ed312ad.rlib: src/lib.rs

/root/repo/target/debug/deps/libbfpp-343897ed0ed312ad.rmeta: src/lib.rs

src/lib.rs:
