/root/repo/target/debug/deps/reproduce_table_e1-55775569365f58a4.d: crates/bench/src/bin/reproduce_table_e1.rs Cargo.toml

/root/repo/target/debug/deps/libreproduce_table_e1-55775569365f58a4.rmeta: crates/bench/src/bin/reproduce_table_e1.rs Cargo.toml

crates/bench/src/bin/reproduce_table_e1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
