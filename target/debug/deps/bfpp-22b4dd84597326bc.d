/root/repo/target/debug/deps/bfpp-22b4dd84597326bc.d: src/lib.rs

/root/repo/target/debug/deps/libbfpp-22b4dd84597326bc.rlib: src/lib.rs

/root/repo/target/debug/deps/libbfpp-22b4dd84597326bc.rmeta: src/lib.rs

src/lib.rs:
