/root/repo/target/debug/deps/reproduce_table_e2-47cd27ab26ad2c79.d: crates/bench/src/bin/reproduce_table_e2.rs

/root/repo/target/debug/deps/reproduce_table_e2-47cd27ab26ad2c79: crates/bench/src/bin/reproduce_table_e2.rs

crates/bench/src/bin/reproduce_table_e2.rs:
