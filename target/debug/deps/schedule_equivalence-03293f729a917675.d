/root/repo/target/debug/deps/schedule_equivalence-03293f729a917675.d: tests/schedule_equivalence.rs

/root/repo/target/debug/deps/schedule_equivalence-03293f729a917675: tests/schedule_equivalence.rs

tests/schedule_equivalence.rs:
