/root/repo/target/debug/deps/bfpp_bench-769e42b362143bfb.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/report.rs crates/bench/src/robustness.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/libbfpp_bench-769e42b362143bfb.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/report.rs crates/bench/src/robustness.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/report.rs:
crates/bench/src/robustness.rs:
crates/bench/src/tables.rs:
