/root/repo/target/debug/deps/reproduce_models-e8dc1b70cc50a06d.d: crates/bench/src/bin/reproduce_models.rs

/root/repo/target/debug/deps/reproduce_models-e8dc1b70cc50a06d: crates/bench/src/bin/reproduce_models.rs

crates/bench/src/bin/reproduce_models.rs:
