/root/repo/target/debug/deps/end_to_end-a819aa2b26d41b3f.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-a819aa2b26d41b3f: tests/end_to_end.rs

tests/end_to_end.rs:
