/root/repo/target/debug/deps/reproduce_fig5-bb82c22e343f5de3.d: crates/bench/src/bin/reproduce_fig5.rs

/root/repo/target/debug/deps/reproduce_fig5-bb82c22e343f5de3: crates/bench/src/bin/reproduce_fig5.rs

crates/bench/src/bin/reproduce_fig5.rs:
