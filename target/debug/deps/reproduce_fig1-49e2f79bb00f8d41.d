/root/repo/target/debug/deps/reproduce_fig1-49e2f79bb00f8d41.d: crates/bench/src/bin/reproduce_fig1.rs

/root/repo/target/debug/deps/libreproduce_fig1-49e2f79bb00f8d41.rmeta: crates/bench/src/bin/reproduce_fig1.rs

crates/bench/src/bin/reproduce_fig1.rs:
