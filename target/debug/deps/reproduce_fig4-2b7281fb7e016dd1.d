/root/repo/target/debug/deps/reproduce_fig4-2b7281fb7e016dd1.d: crates/bench/src/bin/reproduce_fig4.rs Cargo.toml

/root/repo/target/debug/deps/libreproduce_fig4-2b7281fb7e016dd1.rmeta: crates/bench/src/bin/reproduce_fig4.rs Cargo.toml

crates/bench/src/bin/reproduce_fig4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
