/root/repo/target/debug/deps/reproduce_fig3-e7579b8574bcd39a.d: crates/bench/src/bin/reproduce_fig3.rs Cargo.toml

/root/repo/target/debug/deps/libreproduce_fig3-e7579b8574bcd39a.rmeta: crates/bench/src/bin/reproduce_fig3.rs Cargo.toml

crates/bench/src/bin/reproduce_fig3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
