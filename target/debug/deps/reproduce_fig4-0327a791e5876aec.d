/root/repo/target/debug/deps/reproduce_fig4-0327a791e5876aec.d: crates/bench/src/bin/reproduce_fig4.rs

/root/repo/target/debug/deps/libreproduce_fig4-0327a791e5876aec.rmeta: crates/bench/src/bin/reproduce_fig4.rs

crates/bench/src/bin/reproduce_fig4.rs:
