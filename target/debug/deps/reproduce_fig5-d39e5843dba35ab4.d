/root/repo/target/debug/deps/reproduce_fig5-d39e5843dba35ab4.d: crates/bench/src/bin/reproduce_fig5.rs

/root/repo/target/debug/deps/reproduce_fig5-d39e5843dba35ab4: crates/bench/src/bin/reproduce_fig5.rs

crates/bench/src/bin/reproduce_fig5.rs:
