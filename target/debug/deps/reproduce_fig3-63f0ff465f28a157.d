/root/repo/target/debug/deps/reproduce_fig3-63f0ff465f28a157.d: crates/bench/src/bin/reproduce_fig3.rs

/root/repo/target/debug/deps/libreproduce_fig3-63f0ff465f28a157.rmeta: crates/bench/src/bin/reproduce_fig3.rs

crates/bench/src/bin/reproduce_fig3.rs:
