/root/repo/target/debug/deps/bfpp_parallel-79ad0dda110f5471.d: crates/parallel/src/lib.rs crates/parallel/src/batch.rs crates/parallel/src/dp.rs crates/parallel/src/grid.rs crates/parallel/src/placement.rs crates/parallel/src/util.rs

/root/repo/target/debug/deps/bfpp_parallel-79ad0dda110f5471: crates/parallel/src/lib.rs crates/parallel/src/batch.rs crates/parallel/src/dp.rs crates/parallel/src/grid.rs crates/parallel/src/placement.rs crates/parallel/src/util.rs

crates/parallel/src/lib.rs:
crates/parallel/src/batch.rs:
crates/parallel/src/dp.rs:
crates/parallel/src/grid.rs:
crates/parallel/src/placement.rs:
crates/parallel/src/util.rs:
