/root/repo/target/debug/deps/reproduce_stragglers-d210c5c767849ce2.d: crates/bench/src/bin/reproduce_stragglers.rs

/root/repo/target/debug/deps/reproduce_stragglers-d210c5c767849ce2: crates/bench/src/bin/reproduce_stragglers.rs

crates/bench/src/bin/reproduce_stragglers.rs:
