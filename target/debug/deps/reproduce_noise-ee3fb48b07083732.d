/root/repo/target/debug/deps/reproduce_noise-ee3fb48b07083732.d: crates/bench/src/bin/reproduce_noise.rs Cargo.toml

/root/repo/target/debug/deps/libreproduce_noise-ee3fb48b07083732.rmeta: crates/bench/src/bin/reproduce_noise.rs Cargo.toml

crates/bench/src/bin/reproduce_noise.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
