/root/repo/target/debug/deps/bfpp_sim-b8f5033cd0b08c67.d: crates/sim/src/lib.rs crates/sim/src/critical_path.rs crates/sim/src/graph.rs crates/sim/src/perturb.rs crates/sim/src/solver.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libbfpp_sim-b8f5033cd0b08c67.rmeta: crates/sim/src/lib.rs crates/sim/src/critical_path.rs crates/sim/src/graph.rs crates/sim/src/perturb.rs crates/sim/src/solver.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/critical_path.rs:
crates/sim/src/graph.rs:
crates/sim/src/perturb.rs:
crates/sim/src/solver.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
