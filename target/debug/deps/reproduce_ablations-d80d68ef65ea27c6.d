/root/repo/target/debug/deps/reproduce_ablations-d80d68ef65ea27c6.d: crates/bench/src/bin/reproduce_ablations.rs Cargo.toml

/root/repo/target/debug/deps/libreproduce_ablations-d80d68ef65ea27c6.rmeta: crates/bench/src/bin/reproduce_ablations.rs Cargo.toml

crates/bench/src/bin/reproduce_ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
