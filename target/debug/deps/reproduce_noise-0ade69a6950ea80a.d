/root/repo/target/debug/deps/reproduce_noise-0ade69a6950ea80a.d: crates/bench/src/bin/reproduce_noise.rs

/root/repo/target/debug/deps/reproduce_noise-0ade69a6950ea80a: crates/bench/src/bin/reproduce_noise.rs

crates/bench/src/bin/reproduce_noise.rs:
