/root/repo/target/debug/deps/search_equivalence-e6dda799adca93d9.d: crates/exec/tests/search_equivalence.rs

/root/repo/target/debug/deps/search_equivalence-e6dda799adca93d9: crates/exec/tests/search_equivalence.rs

crates/exec/tests/search_equivalence.rs:
