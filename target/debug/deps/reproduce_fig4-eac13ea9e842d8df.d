/root/repo/target/debug/deps/reproduce_fig4-eac13ea9e842d8df.d: crates/bench/src/bin/reproduce_fig4.rs

/root/repo/target/debug/deps/reproduce_fig4-eac13ea9e842d8df: crates/bench/src/bin/reproduce_fig4.rs

crates/bench/src/bin/reproduce_fig4.rs:
