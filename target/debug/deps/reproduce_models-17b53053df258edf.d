/root/repo/target/debug/deps/reproduce_models-17b53053df258edf.d: crates/bench/src/bin/reproduce_models.rs Cargo.toml

/root/repo/target/debug/deps/libreproduce_models-17b53053df258edf.rmeta: crates/bench/src/bin/reproduce_models.rs Cargo.toml

crates/bench/src/bin/reproduce_models.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
