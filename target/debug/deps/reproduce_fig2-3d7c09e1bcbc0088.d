/root/repo/target/debug/deps/reproduce_fig2-3d7c09e1bcbc0088.d: crates/bench/src/bin/reproduce_fig2.rs

/root/repo/target/debug/deps/reproduce_fig2-3d7c09e1bcbc0088: crates/bench/src/bin/reproduce_fig2.rs

crates/bench/src/bin/reproduce_fig2.rs:
