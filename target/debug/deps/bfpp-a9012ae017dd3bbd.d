/root/repo/target/debug/deps/bfpp-a9012ae017dd3bbd.d: src/bin/bfpp.rs

/root/repo/target/debug/deps/bfpp-a9012ae017dd3bbd: src/bin/bfpp.rs

src/bin/bfpp.rs:
