/root/repo/target/debug/deps/end_to_end-2e33c3338dd6c29b.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-2e33c3338dd6c29b: tests/end_to_end.rs

tests/end_to_end.rs:
