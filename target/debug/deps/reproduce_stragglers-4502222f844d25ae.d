/root/repo/target/debug/deps/reproduce_stragglers-4502222f844d25ae.d: crates/bench/src/bin/reproduce_stragglers.rs

/root/repo/target/debug/deps/libreproduce_stragglers-4502222f844d25ae.rmeta: crates/bench/src/bin/reproduce_stragglers.rs

crates/bench/src/bin/reproduce_stragglers.rs:
