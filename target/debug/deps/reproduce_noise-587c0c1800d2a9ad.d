/root/repo/target/debug/deps/reproduce_noise-587c0c1800d2a9ad.d: crates/bench/src/bin/reproduce_noise.rs Cargo.toml

/root/repo/target/debug/deps/libreproduce_noise-587c0c1800d2a9ad.rmeta: crates/bench/src/bin/reproduce_noise.rs Cargo.toml

crates/bench/src/bin/reproduce_noise.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
