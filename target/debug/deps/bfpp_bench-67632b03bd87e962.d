/root/repo/target/debug/deps/bfpp_bench-67632b03bd87e962.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/report.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/libbfpp_bench-67632b03bd87e962.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/report.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/libbfpp_bench-67632b03bd87e962.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/report.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/report.rs:
crates/bench/src/tables.rs:
