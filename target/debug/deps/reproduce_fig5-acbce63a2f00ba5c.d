/root/repo/target/debug/deps/reproduce_fig5-acbce63a2f00ba5c.d: crates/bench/src/bin/reproduce_fig5.rs

/root/repo/target/debug/deps/libreproduce_fig5-acbce63a2f00ba5c.rmeta: crates/bench/src/bin/reproduce_fig5.rs

crates/bench/src/bin/reproduce_fig5.rs:
