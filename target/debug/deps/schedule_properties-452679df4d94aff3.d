/root/repo/target/debug/deps/schedule_properties-452679df4d94aff3.d: crates/core/tests/schedule_properties.rs Cargo.toml

/root/repo/target/debug/deps/libschedule_properties-452679df4d94aff3.rmeta: crates/core/tests/schedule_properties.rs Cargo.toml

crates/core/tests/schedule_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
