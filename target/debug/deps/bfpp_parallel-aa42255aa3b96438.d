/root/repo/target/debug/deps/bfpp_parallel-aa42255aa3b96438.d: crates/parallel/src/lib.rs crates/parallel/src/batch.rs crates/parallel/src/dp.rs crates/parallel/src/grid.rs crates/parallel/src/placement.rs crates/parallel/src/util.rs

/root/repo/target/debug/deps/libbfpp_parallel-aa42255aa3b96438.rmeta: crates/parallel/src/lib.rs crates/parallel/src/batch.rs crates/parallel/src/dp.rs crates/parallel/src/grid.rs crates/parallel/src/placement.rs crates/parallel/src/util.rs

crates/parallel/src/lib.rs:
crates/parallel/src/batch.rs:
crates/parallel/src/dp.rs:
crates/parallel/src/grid.rs:
crates/parallel/src/placement.rs:
crates/parallel/src/util.rs:
