/root/repo/target/debug/deps/paper_pins-ecf1026fa5067925.d: tests/paper_pins.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_pins-ecf1026fa5067925.rmeta: tests/paper_pins.rs Cargo.toml

tests/paper_pins.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
