/root/repo/target/debug/deps/reproduce_fig7-719f8ac73445b28a.d: crates/bench/src/bin/reproduce_fig7.rs

/root/repo/target/debug/deps/reproduce_fig7-719f8ac73445b28a: crates/bench/src/bin/reproduce_fig7.rs

crates/bench/src/bin/reproduce_fig7.rs:
