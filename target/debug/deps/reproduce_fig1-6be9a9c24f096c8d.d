/root/repo/target/debug/deps/reproduce_fig1-6be9a9c24f096c8d.d: crates/bench/src/bin/reproduce_fig1.rs

/root/repo/target/debug/deps/reproduce_fig1-6be9a9c24f096c8d: crates/bench/src/bin/reproduce_fig1.rs

crates/bench/src/bin/reproduce_fig1.rs:
