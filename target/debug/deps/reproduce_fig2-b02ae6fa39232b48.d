/root/repo/target/debug/deps/reproduce_fig2-b02ae6fa39232b48.d: crates/bench/src/bin/reproduce_fig2.rs Cargo.toml

/root/repo/target/debug/deps/libreproduce_fig2-b02ae6fa39232b48.rmeta: crates/bench/src/bin/reproduce_fig2.rs Cargo.toml

crates/bench/src/bin/reproduce_fig2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
