/root/repo/target/debug/examples/tradeoff_planner-8413babd7dbbf589.d: examples/tradeoff_planner.rs

/root/repo/target/debug/examples/tradeoff_planner-8413babd7dbbf589: examples/tradeoff_planner.rs

examples/tradeoff_planner.rs:
