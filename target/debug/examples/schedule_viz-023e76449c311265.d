/root/repo/target/debug/examples/schedule_viz-023e76449c311265.d: examples/schedule_viz.rs

/root/repo/target/debug/examples/schedule_viz-023e76449c311265: examples/schedule_viz.rs

examples/schedule_viz.rs:
