/root/repo/target/debug/examples/schedule_lab-6224ebf28c0ee5ca.d: examples/schedule_lab.rs

/root/repo/target/debug/examples/schedule_lab-6224ebf28c0ee5ca: examples/schedule_lab.rs

examples/schedule_lab.rs:
