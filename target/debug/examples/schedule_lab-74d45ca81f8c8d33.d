/root/repo/target/debug/examples/schedule_lab-74d45ca81f8c8d33.d: examples/schedule_lab.rs Cargo.toml

/root/repo/target/debug/examples/libschedule_lab-74d45ca81f8c8d33.rmeta: examples/schedule_lab.rs Cargo.toml

examples/schedule_lab.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
