/root/repo/target/debug/examples/schedule_viz-331b77cea66a237b.d: examples/schedule_viz.rs

/root/repo/target/debug/examples/schedule_viz-331b77cea66a237b: examples/schedule_viz.rs

examples/schedule_viz.rs:
