/root/repo/target/debug/examples/training_demo-3ce9fd048e932a73.d: examples/training_demo.rs

/root/repo/target/debug/examples/training_demo-3ce9fd048e932a73: examples/training_demo.rs

examples/training_demo.rs:
