/root/repo/target/debug/examples/config_search-f89d7d4f882d6dbd.d: examples/config_search.rs

/root/repo/target/debug/examples/config_search-f89d7d4f882d6dbd: examples/config_search.rs

examples/config_search.rs:
