/root/repo/target/debug/examples/schedule_lab-4c5573df5af4a3ef.d: examples/schedule_lab.rs

/root/repo/target/debug/examples/schedule_lab-4c5573df5af4a3ef: examples/schedule_lab.rs

examples/schedule_lab.rs:
