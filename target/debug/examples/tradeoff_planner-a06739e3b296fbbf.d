/root/repo/target/debug/examples/tradeoff_planner-a06739e3b296fbbf.d: examples/tradeoff_planner.rs Cargo.toml

/root/repo/target/debug/examples/libtradeoff_planner-a06739e3b296fbbf.rmeta: examples/tradeoff_planner.rs Cargo.toml

examples/tradeoff_planner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
