/root/repo/target/debug/examples/quickstart-591d995087f2baf5.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-591d995087f2baf5: examples/quickstart.rs

examples/quickstart.rs:
