/root/repo/target/debug/examples/quickstart-04774c33429bd982.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-04774c33429bd982: examples/quickstart.rs

examples/quickstart.rs:
