/root/repo/target/debug/examples/schedule_viz-18e362664e15d7bd.d: examples/schedule_viz.rs Cargo.toml

/root/repo/target/debug/examples/libschedule_viz-18e362664e15d7bd.rmeta: examples/schedule_viz.rs Cargo.toml

examples/schedule_viz.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
