/root/repo/target/debug/examples/tradeoff_planner-0a9aad19fc64c980.d: examples/tradeoff_planner.rs

/root/repo/target/debug/examples/tradeoff_planner-0a9aad19fc64c980: examples/tradeoff_planner.rs

examples/tradeoff_planner.rs:
