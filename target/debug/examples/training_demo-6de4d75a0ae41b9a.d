/root/repo/target/debug/examples/training_demo-6de4d75a0ae41b9a.d: examples/training_demo.rs Cargo.toml

/root/repo/target/debug/examples/libtraining_demo-6de4d75a0ae41b9a.rmeta: examples/training_demo.rs Cargo.toml

examples/training_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
