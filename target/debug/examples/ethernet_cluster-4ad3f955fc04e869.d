/root/repo/target/debug/examples/ethernet_cluster-4ad3f955fc04e869.d: examples/ethernet_cluster.rs

/root/repo/target/debug/examples/ethernet_cluster-4ad3f955fc04e869: examples/ethernet_cluster.rs

examples/ethernet_cluster.rs:
