/root/repo/target/debug/examples/config_search-da3e856cd733e53a.d: examples/config_search.rs

/root/repo/target/debug/examples/config_search-da3e856cd733e53a: examples/config_search.rs

examples/config_search.rs:
