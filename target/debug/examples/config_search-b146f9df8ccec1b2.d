/root/repo/target/debug/examples/config_search-b146f9df8ccec1b2.d: examples/config_search.rs Cargo.toml

/root/repo/target/debug/examples/libconfig_search-b146f9df8ccec1b2.rmeta: examples/config_search.rs Cargo.toml

examples/config_search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
