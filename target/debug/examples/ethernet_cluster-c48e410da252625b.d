/root/repo/target/debug/examples/ethernet_cluster-c48e410da252625b.d: examples/ethernet_cluster.rs

/root/repo/target/debug/examples/ethernet_cluster-c48e410da252625b: examples/ethernet_cluster.rs

examples/ethernet_cluster.rs:
