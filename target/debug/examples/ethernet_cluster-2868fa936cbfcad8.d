/root/repo/target/debug/examples/ethernet_cluster-2868fa936cbfcad8.d: examples/ethernet_cluster.rs Cargo.toml

/root/repo/target/debug/examples/libethernet_cluster-2868fa936cbfcad8.rmeta: examples/ethernet_cluster.rs Cargo.toml

examples/ethernet_cluster.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
