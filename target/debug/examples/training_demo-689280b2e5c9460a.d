/root/repo/target/debug/examples/training_demo-689280b2e5c9460a.d: examples/training_demo.rs

/root/repo/target/debug/examples/training_demo-689280b2e5c9460a: examples/training_demo.rs

examples/training_demo.rs:
